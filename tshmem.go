// Package tshmem is the public API of TSHMEM (TileSHMEM): an OpenSHMEM 1.0
// library for the Tilera TILE-Gx and TILEPro many-core processors,
// reproducing Lam, George and Lam, "TSHMEM: Shared-Memory Parallel
// Computing on Tilera Many-Core Processors" (IPPS 2013).
//
// Because Tilera silicon is unobtainable, the library runs on a faithful
// simulation substrate: the iMesh networks, UDN, per-tile cache hierarchy
// with the Dynamic Distributed Cache, and the TMC library are modeled in
// internal packages, with every processing element (PE) executing as a
// goroutine bound to a simulated tile and carrying a deterministic virtual
// clock. Programs compute real results through real shared memory; the
// virtual clocks reproduce the paper's latency and bandwidth behavior.
//
// # Quick start
//
//	cfg := tshmem.Config{Chip: tshmem.TileGx8036(), NPEs: 4}
//	rep, err := tshmem.Run(cfg, func(pe *tshmem.PE) error {
//	    x, err := tshmem.Malloc[int64](pe, 16) // collective shmalloc
//	    if err != nil {
//	        return err
//	    }
//	    src := tshmem.MustLocal(pe, x)
//	    for i := range src {
//	        src[i] = int64(pe.MyPE())
//	    }
//	    if err := pe.BarrierAll(); err != nil {
//	        return err
//	    }
//	    next := (pe.MyPE() + 1) % pe.NumPEs()
//	    return tshmem.Put(pe, x, x, 16, next) // one-sided put to a neighbor
//	})
//
// The mapping from OpenSHMEM C names: start_pes is Run; _my_pe/_num_pes are
// PE.MyPE/PE.NumPEs; shmalloc/shfree/shrealloc/shmemalign are
// Malloc/Free/Realloc/MallocAlign; shmem_putmem and typed block puts are
// Put/PutSlice; elemental shmem_TYPE_p/g are P/G; strided iput/iget are
// IPut/IGet; shmem_barrier_all/shmem_barrier are PE.BarrierAll/PE.Barrier;
// shmem_fence/quiet are PE.Fence/PE.Quiet; shmem_wait/wait_until are
// Wait/WaitUntil; broadcast/collect/fcollect and the to_all reductions keep
// their names; shmem_swap/cswap/fadd/finc/add/inc are Swap/CSwap/FAdd/
// FInc/Add/Inc; shmem_ptr is Ptr; and Finalize implements the paper's
// proposed shmem_finalize extension.
package tshmem

import (
	"tshmem/internal/arch"
	"tshmem/internal/cache"
	"tshmem/internal/core"
	"tshmem/internal/fault"
	"tshmem/internal/profile"
	"tshmem/internal/sanitize"
	"tshmem/internal/stats"
)

// Homing is a memory-homing strategy for common memory (paper S III.A).
type Homing = cache.Homing

// Memory-homing strategies (Config.Homing).
const (
	// HashForHome distributes cache lines across all tiles' L2s (the DDC);
	// the default, and what the paper's TSHMEM uses.
	HashForHome = cache.HashForHome
	// LocalHome pins pages to the accessing tile: fast while data fits its
	// L2, no DDC beyond it.
	LocalHome = cache.LocalHome
	// RemoteHome pins pages to a single other tile: good for
	// producer-consumer pairs, a serialization bottleneck under fan-in.
	RemoteHome = cache.RemoteHome
)

// Core types.
type (
	// Config describes a launch: chip, PE count, heap sizes, and algorithm
	// selections.
	Config = core.Config
	// PE is one processing element, bound to a tile.
	PE = core.PE
	// Report summarizes a completed run (per-PE virtual times, traffic).
	Report = core.Report
	// Stats counts one PE's traffic.
	Stats = core.Stats
	// ActiveSet is the OpenSHMEM (PE_start, logPE_stride, PE_size) triplet.
	ActiveSet = core.ActiveSet
	// Chip is a Tilera processor model.
	Chip = arch.Chip
	// Cmp is a point-to-point synchronization comparison (SHMEM_CMP_*).
	Cmp = core.Cmp
	// BarrierImpl selects the BarrierAll backend.
	BarrierImpl = core.BarrierImpl
	// BarrierAlgo selects a barrier algorithm from the synchronization
	// library (Config.BarrierAlgo; see docs/SYNC.md).
	BarrierAlgo = core.BarrierAlgo
	// LockAlgo selects the SetLock/ClearLock/TestLock implementation
	// (Config.LockAlgo; see docs/SYNC.md).
	LockAlgo = core.LockAlgo
	// Engine selects the host execution engine (Config.Engine; see
	// docs/PERFORMANCE.md).
	Engine = core.Engine
	// BcastAlgo selects the default broadcast algorithm.
	BcastAlgo = core.BcastAlgo
	// ReduceAlgo selects the default reduction algorithm.
	ReduceAlgo = core.ReduceAlgo
)

// Observability (Config.Observe / Config.Trace; see docs/OBSERVABILITY.md).
type (
	// Counters is one PE's (or, aggregated, a run's) substrate counter
	// block: UDN traffic, mesh hops, barrier rounds, RMA bytes by
	// locality, cache copies by level, and per-op counts/virtual time.
	// Obtain it from PE.Counters during a run or Report.Stats afterwards.
	Counters = stats.Counters
	// TraceEvent is one traced substrate operation: (pe, op, virtual
	// start/end, bytes, peer). Report.Trace returns the run's merged
	// trace; Report.TraceTo exports it as Chrome trace_event JSON.
	TraceEvent = stats.Event
	// Op classifies operations in counters and traces.
	Op = stats.Op
)

// Operation classes (Counters.Ops indices, TraceEvent.Op values).
const (
	OpInit      = stats.OpInit
	OpPut       = stats.OpPut
	OpGet       = stats.OpGet
	OpAtomic    = stats.OpAtomic
	OpFence     = stats.OpFence
	OpBarrier   = stats.OpBarrier
	OpBroadcast = stats.OpBroadcast
	OpCollect   = stats.OpCollect
	OpReduce    = stats.OpReduce
	OpWait      = stats.OpWait
	NumOps      = stats.NumOps
)

// Synchronization sanitizer (Config.Sanitize; see docs/OBSERVABILITY.md).
type (
	// Diagnostic is one synchronization defect the happens-before checker
	// found: the PE pair, op pair, symmetric region and offset, and the
	// virtual timestamps of the conflicting operations. Report.Diagnostics
	// lists them when the run was configured with Config.Sanitize.
	Diagnostic = sanitize.Diagnostic
	// DiagKind classifies a Diagnostic.
	DiagKind = sanitize.Kind
)

// Diagnostic kinds (Diagnostic.Kind values).
const (
	DiagRacePutPut        = sanitize.RacePutPut
	DiagRacePutGet        = sanitize.RacePutGet
	DiagUnfencedPut       = sanitize.UnfencedPut
	DiagUnfencedRead      = sanitize.UnfencedRead
	DiagUnfencedSignal    = sanitize.UnfencedSignal
	DiagLockDoubleAcquire = sanitize.LockDoubleAcquire
	DiagLockBadRelease    = sanitize.LockBadRelease
	DiagTimeout           = sanitize.Timeout
)

// Fault injection (Config.Faults; see docs/ROBUSTNESS.md).
type (
	// FaultPlan is a deterministic, virtual-time-scheduled schedule of
	// substrate degradation events. Assign one to Config.Faults (a literal,
	// a parsed spec, or a seeded plan) to run a program under injected
	// faults with every blocking wait bounded.
	FaultPlan = fault.Plan
	// FaultEvent is one scheduled degradation: what breaks, where, by how
	// much, and over which virtual-time window.
	FaultEvent = fault.Event
	// FaultKind classifies a FaultEvent (UDN stall, dropped interrupt,
	// slow link, slow/dead tile, stuck cache-home tile).
	FaultKind = fault.Kind
	// TimeoutError is the typed diagnostic behind ErrTimeout: the stuck
	// PE, awaited peer, operation, blamed fault event, and virtual window.
	TimeoutError = core.TimeoutError
)

// Fault kinds (FaultEvent.Kind values).
const (
	FaultUDNStall    = fault.UDNStall
	FaultUDNDropIntr = fault.UDNDropIntr
	FaultLinkSlow    = fault.LinkSlow
	FaultTileSlow    = fault.TileSlow
	FaultTileDead    = fault.TileDead
	FaultCacheStuck  = fault.CacheStuck
)

// Causal profiler (Config.Profile; see docs/OBSERVABILITY.md).
type (
	// Profile is the run's causal profile: per-PE blame ledgers that
	// partition every PE's virtual makespan into categories, the critical
	// path through the happens-before DAG, and exporters for text, folded
	// stacks, pprof, and JSON. Report.Profile returns it when the run was
	// configured with Config.Profile.
	Profile = profile.Profile
	// PEProfile is one PE's blame ledger.
	PEProfile = profile.PEProfile
	// ProfileStep is one link of the critical path.
	ProfileStep = profile.Step
	// BlameCategory indexes a blame ledger (compute, udn.send, ...,
	// fault.stall).
	BlameCategory = profile.Category
)

// Blame categories (BlameCategory values; tshmem-info -profile lists the
// definitions).
const (
	BlameCompute     = profile.CatCompute
	BlameUDNSend     = profile.CatUDNSend
	BlameUDNWait     = profile.CatUDNWait
	BlameBarrierWait = profile.CatBarrierWait
	BlameLockWait    = profile.CatLockWait
	BlameRMAL1d      = profile.CatRMAL1d
	BlameRMAL2       = profile.CatRMAL2
	BlameRMADDC      = profile.CatRMADDC
	BlameRMADRAM     = profile.CatRMADRAM
	BlameMesh        = profile.CatMesh
	BlameFault       = profile.CatFault
	NumBlame         = profile.NumCategories
)

// ParseFaults parses a fault-plan spec: "seed:N", a bare integer seed, or
// a semicolon-separated event list like "stall:pe=3,q=0,start=1us,end=9us"
// (the grammar is documented in docs/ROBUSTNESS.md).
func ParseFaults(spec string) (*FaultPlan, error) { return fault.Parse(spec) }

// FaultsFromSeed derives a small deterministic transient fault plan for an
// npes-PE program from a seed; the same (seed, npes) always yields the
// same plan.
func FaultsFromSeed(seed int64, npes int) *FaultPlan { return fault.FromSeed(seed, npes) }

// Ref is a handle to a symmetric object of element type T, valid on every
// PE.
type Ref[T Elem] = core.Ref[T]

// PSync is the symmetric synchronization work array collectives take.
type PSync = core.PSync

// Type constraints.
type (
	// Elem covers all transferable element types.
	Elem = core.Elem
	// Integer covers the integer types (bitwise reductions, waits).
	Integer = core.Integer
	// Numeric covers the arithmetic reduction types.
	Numeric = core.Numeric
	// AtomicT covers shmem_swap types.
	AtomicT = core.AtomicT
	// AtomicInt covers the integer-only atomics.
	AtomicInt = core.AtomicInt
)

// Chip models (Table II).
var (
	// TileGx8036 is the 36-tile, 64-bit TILE-Gx at 1 GHz (the paper's
	// TILEmpower-Gx platform).
	TileGx8036 = arch.Gx8036
	// TilePro64 is the 64-tile, 32-bit TILEPro at 700 MHz (the paper's
	// TILEncorePro-64 platform).
	TilePro64 = arch.Pro64
	// TileGx8016 is the 16-tile TILE-Gx variant.
	TileGx8016 = arch.Gx8016
	// TilePro36 is the 36-tile TILEPro variant.
	TilePro36 = arch.Pro36
	// EpiphanyIII is the 16-core Adapteva Epiphany-III at 600 MHz
	// (the Parallella board's E16G301; scratchpad cores, no caches).
	EpiphanyIII = arch.EpiphanyIII
	// EpiphanyIV is the 64-core Epiphany-IV at 800 MHz.
	EpiphanyIV = arch.EpiphanyIV
	// EpiphanyV is the 1024-core Epiphany-V extrapolation (parameters
	// from the design paper, not silicon measurements).
	EpiphanyV = arch.EpiphanyV
	// Synthetic builds an arbitrary WxH mesh chip for scaling studies
	// (docs/ARCHITECTURES.md); ChipByName parses "synthetic-WxH" too.
	Synthetic = arch.Synthetic
	// ChipByName looks a chip model up by name.
	ChipByName = arch.ByName
	// Chips lists all modeled processors.
	Chips = arch.Chips
)

// Launch.

// Run launches an SPMD TSHMEM program: it sets up common memory and the
// UDN, forks cfg.NPEs processing elements bound one-to-one to tiles, runs
// body on each after start_pes initialization, and tears everything down
// (the shmem_finalize behavior).
func Run(cfg Config, body func(*PE) error) (*Report, error) { return core.Run(cfg, body) }

// Barrier backends (Config.Barrier).
const (
	// UDNBarrier is the paper's linear wait+release UDN chain.
	UDNBarrier = core.UDNBarrier
	// TMCSpinBarrier backs BarrierAll with the TMC spin barrier (the
	// TILE-Gx optimization from the paper's open issues).
	TMCSpinBarrier = core.TMCSpinBarrier
)

// Barrier algorithms (Config.BarrierAlgo; docs/SYNC.md). The zero value,
// BarrierAlgoDefault, preserves the legacy dispatch: BarrierAll honors
// Config.Barrier and subset barriers use the paper's linear chain.
const (
	BarrierAlgoDefault       = core.BarrierAlgoDefault
	BarrierAlgoLinear        = core.BarrierAlgoLinear
	BarrierAlgoSpin          = core.BarrierAlgoSpin
	BarrierAlgoCounter       = core.BarrierAlgoCounter
	BarrierAlgoDissemination = core.BarrierAlgoDissemination
	BarrierAlgoTournament    = core.BarrierAlgoTournament
	BarrierAlgoMCSTree       = core.BarrierAlgoMCSTree
)

// Lock algorithms (Config.LockAlgo; docs/SYNC.md). The zero value,
// LockAlgoCAS, is the legacy compare-and-swap spin lock.
const (
	LockAlgoCAS    = core.LockAlgoCAS
	LockAlgoTicket = core.LockAlgoTicket
	LockAlgoMCS    = core.LockAlgoMCS
)

// Execution engines (Config.Engine; docs/PERFORMANCE.md). The zero value,
// EngineGoroutine, is the legacy one-goroutine-per-PE host scheduler;
// EngineEvent runs the PEs under a discrete-event calendar with at most
// one runnable PE per simulation. Reports and traces are byte-identical
// between the two.
const (
	EngineGoroutine = core.EngineGoroutine
	EngineEvent     = core.EngineEvent
)

// ParseEngine resolves an engine name ("goroutine", "event"; "" and
// "default" mean EngineGoroutine).
func ParseEngine(s string) (Engine, error) { return core.ParseEngine(s) }

// Engines lists every selectable execution engine.
func Engines() []Engine { return core.Engines() }

// ParseBarrierAlgo resolves a barrier-algorithm name ("default", "linear",
// "tmc-spin", "counter", "dissemination", "tournament", "mcs-tree") — the
// vocabulary of tshmem-bench's -barrier-algo flag.
func ParseBarrierAlgo(s string) (BarrierAlgo, error) { return core.ParseBarrierAlgo(s) }

// ParseLockAlgo resolves a lock-algorithm name ("cas", "ticket", "mcs").
func ParseLockAlgo(s string) (LockAlgo, error) { return core.ParseLockAlgo(s) }

// BarrierAlgos lists every selectable barrier algorithm.
func BarrierAlgos() []BarrierAlgo { return core.BarrierAlgos() }

// LockAlgos lists every lock algorithm.
func LockAlgos() []LockAlgo { return core.LockAlgos() }

// Broadcast algorithms (Config.Bcast).
const (
	PullBcast     = core.PullBcast
	PushBcast     = core.PushBcast
	BinomialBcast = core.BinomialBcast
)

// Reduction algorithms (Config.Reduce).
const (
	NaiveReduce       = core.NaiveReduce
	RecursiveDoubling = core.RecursiveDoubling
)

// Comparison operators for Wait/WaitUntil.
const (
	CmpEQ = core.CmpEQ
	CmpNE = core.CmpNE
	CmpGT = core.CmpGT
	CmpLE = core.CmpLE
	CmpLT = core.CmpLT
	CmpGE = core.CmpGE
)

// Collective work-array sizes (OpenSHMEM constants).
const (
	BarrierSyncSize  = core.BarrierSyncSize
	BcastSyncSize    = core.BcastSyncSize
	CollectSyncSize  = core.CollectSyncSize
	ReduceSyncSize   = core.ReduceSyncSize
	ReduceMinWrkSize = core.ReduceMinWrkSize
	SyncValue        = core.SyncValue
)

// Errors.
var (
	ErrNotSupported  = core.ErrNotSupported
	ErrBadPE         = core.ErrBadPE
	ErrBadActiveSet  = core.ErrBadActiveSet
	ErrNotInSet      = core.ErrNotInSet
	ErrBounds        = core.ErrBounds
	ErrAsymmetric    = core.ErrAsymmetric
	ErrFinalized     = core.ErrFinalized
	ErrStatic        = core.ErrStatic
	ErrUnknownStatic = core.ErrUnknownStatic
	// ErrTimeout reports a bounded wait that expired under fault injection;
	// match with errors.Is. Concrete errors are *TimeoutError values.
	ErrTimeout = core.ErrTimeout
)

// AllPEs is the active set covering every PE of an n-PE program.
func AllPEs(n int) ActiveSet { return core.AllPEs(n) }
