// Package shmemc provides the C-flavored OpenSHMEM 1.0 surface on top of
// the generic tshmem API, easing ports of existing SHMEM codes: every
// function carries its C name (shmem_int_put becomes shmemc.IntPut, and so
// on) with the C type mapped to its LP64 Go equivalent (short=int16,
// int=int32, long=long long=int64, float=float32, double=float64).
//
// Environment and synchronization calls that are methods on tshmem.PE
// (BarrierAll, Fence, Quiet, SetLock, ...) are not duplicated here.
package shmemc

import "tshmem"

// PE re-exports the processing-element handle.
type PE = tshmem.PE

// ShortPut is shmem_short_put: copy nelems elements of the local
// source slice into target on PE pe (non-blocking put semantics).
func ShortPut(p *PE, target tshmem.Ref[int16], source []int16, nelems, pe int) error {
	if err := checkN(len(source), nelems); err != nil {
		return err
	}
	return tshmem.PutSlice(p, target.Slice(0, min(nelems, target.Len())), source[:nelems], pe)
}

// ShortGet is shmem_short_get: copy nelems elements of source on PE pe
// into the local target slice (blocking).
func ShortGet(p *PE, target []int16, source tshmem.Ref[int16], nelems, pe int) error {
	if err := checkN(len(target), nelems); err != nil {
		return err
	}
	return tshmem.GetSlice(p, target[:nelems], source.Slice(0, min(nelems, source.Len())), pe)
}

// ShortP is shmem_short_p: the elemental put.
func ShortP(p *PE, target tshmem.Ref[int16], value int16, pe int) error {
	return tshmem.P(p, target, value, pe)
}

// ShortG is shmem_short_g: the elemental get.
func ShortG(p *PE, source tshmem.Ref[int16], pe int) (int16, error) {
	return tshmem.G(p, source, pe)
}

// ShortIPut is shmem_short_iput: the strided put (strides in elements).
func ShortIPut(p *PE, target, source tshmem.Ref[int16], tst, sst int64, nelems, pe int) error {
	return tshmem.IPut(p, target, source, tst, sst, nelems, pe)
}

// ShortIGet is shmem_short_iget: the strided get.
func ShortIGet(p *PE, target, source tshmem.Ref[int16], tst, sst int64, nelems, pe int) error {
	return tshmem.IGet(p, target, source, tst, sst, nelems, pe)
}

// IntPut is shmem_int_put: copy nelems elements of the local
// source slice into target on PE pe (non-blocking put semantics).
func IntPut(p *PE, target tshmem.Ref[int32], source []int32, nelems, pe int) error {
	if err := checkN(len(source), nelems); err != nil {
		return err
	}
	return tshmem.PutSlice(p, target.Slice(0, min(nelems, target.Len())), source[:nelems], pe)
}

// IntGet is shmem_int_get: copy nelems elements of source on PE pe
// into the local target slice (blocking).
func IntGet(p *PE, target []int32, source tshmem.Ref[int32], nelems, pe int) error {
	if err := checkN(len(target), nelems); err != nil {
		return err
	}
	return tshmem.GetSlice(p, target[:nelems], source.Slice(0, min(nelems, source.Len())), pe)
}

// IntP is shmem_int_p: the elemental put.
func IntP(p *PE, target tshmem.Ref[int32], value int32, pe int) error {
	return tshmem.P(p, target, value, pe)
}

// IntG is shmem_int_g: the elemental get.
func IntG(p *PE, source tshmem.Ref[int32], pe int) (int32, error) {
	return tshmem.G(p, source, pe)
}

// IntIPut is shmem_int_iput: the strided put (strides in elements).
func IntIPut(p *PE, target, source tshmem.Ref[int32], tst, sst int64, nelems, pe int) error {
	return tshmem.IPut(p, target, source, tst, sst, nelems, pe)
}

// IntIGet is shmem_int_iget: the strided get.
func IntIGet(p *PE, target, source tshmem.Ref[int32], tst, sst int64, nelems, pe int) error {
	return tshmem.IGet(p, target, source, tst, sst, nelems, pe)
}

// LongPut is shmem_long_put: copy nelems elements of the local
// source slice into target on PE pe (non-blocking put semantics).
func LongPut(p *PE, target tshmem.Ref[int64], source []int64, nelems, pe int) error {
	if err := checkN(len(source), nelems); err != nil {
		return err
	}
	return tshmem.PutSlice(p, target.Slice(0, min(nelems, target.Len())), source[:nelems], pe)
}

// LongGet is shmem_long_get: copy nelems elements of source on PE pe
// into the local target slice (blocking).
func LongGet(p *PE, target []int64, source tshmem.Ref[int64], nelems, pe int) error {
	if err := checkN(len(target), nelems); err != nil {
		return err
	}
	return tshmem.GetSlice(p, target[:nelems], source.Slice(0, min(nelems, source.Len())), pe)
}

// LongP is shmem_long_p: the elemental put.
func LongP(p *PE, target tshmem.Ref[int64], value int64, pe int) error {
	return tshmem.P(p, target, value, pe)
}

// LongG is shmem_long_g: the elemental get.
func LongG(p *PE, source tshmem.Ref[int64], pe int) (int64, error) {
	return tshmem.G(p, source, pe)
}

// LongIPut is shmem_long_iput: the strided put (strides in elements).
func LongIPut(p *PE, target, source tshmem.Ref[int64], tst, sst int64, nelems, pe int) error {
	return tshmem.IPut(p, target, source, tst, sst, nelems, pe)
}

// LongIGet is shmem_long_iget: the strided get.
func LongIGet(p *PE, target, source tshmem.Ref[int64], tst, sst int64, nelems, pe int) error {
	return tshmem.IGet(p, target, source, tst, sst, nelems, pe)
}

// LonglongPut is shmem_longlong_put: copy nelems elements of the local
// source slice into target on PE pe (non-blocking put semantics).
func LonglongPut(p *PE, target tshmem.Ref[int64], source []int64, nelems, pe int) error {
	if err := checkN(len(source), nelems); err != nil {
		return err
	}
	return tshmem.PutSlice(p, target.Slice(0, min(nelems, target.Len())), source[:nelems], pe)
}

// LonglongGet is shmem_longlong_get: copy nelems elements of source on PE pe
// into the local target slice (blocking).
func LonglongGet(p *PE, target []int64, source tshmem.Ref[int64], nelems, pe int) error {
	if err := checkN(len(target), nelems); err != nil {
		return err
	}
	return tshmem.GetSlice(p, target[:nelems], source.Slice(0, min(nelems, source.Len())), pe)
}

// LonglongP is shmem_longlong_p: the elemental put.
func LonglongP(p *PE, target tshmem.Ref[int64], value int64, pe int) error {
	return tshmem.P(p, target, value, pe)
}

// LonglongG is shmem_longlong_g: the elemental get.
func LonglongG(p *PE, source tshmem.Ref[int64], pe int) (int64, error) {
	return tshmem.G(p, source, pe)
}

// LonglongIPut is shmem_longlong_iput: the strided put (strides in elements).
func LonglongIPut(p *PE, target, source tshmem.Ref[int64], tst, sst int64, nelems, pe int) error {
	return tshmem.IPut(p, target, source, tst, sst, nelems, pe)
}

// LonglongIGet is shmem_longlong_iget: the strided get.
func LonglongIGet(p *PE, target, source tshmem.Ref[int64], tst, sst int64, nelems, pe int) error {
	return tshmem.IGet(p, target, source, tst, sst, nelems, pe)
}

// FloatPut is shmem_float_put: copy nelems elements of the local
// source slice into target on PE pe (non-blocking put semantics).
func FloatPut(p *PE, target tshmem.Ref[float32], source []float32, nelems, pe int) error {
	if err := checkN(len(source), nelems); err != nil {
		return err
	}
	return tshmem.PutSlice(p, target.Slice(0, min(nelems, target.Len())), source[:nelems], pe)
}

// FloatGet is shmem_float_get: copy nelems elements of source on PE pe
// into the local target slice (blocking).
func FloatGet(p *PE, target []float32, source tshmem.Ref[float32], nelems, pe int) error {
	if err := checkN(len(target), nelems); err != nil {
		return err
	}
	return tshmem.GetSlice(p, target[:nelems], source.Slice(0, min(nelems, source.Len())), pe)
}

// FloatP is shmem_float_p: the elemental put.
func FloatP(p *PE, target tshmem.Ref[float32], value float32, pe int) error {
	return tshmem.P(p, target, value, pe)
}

// FloatG is shmem_float_g: the elemental get.
func FloatG(p *PE, source tshmem.Ref[float32], pe int) (float32, error) {
	return tshmem.G(p, source, pe)
}

// FloatIPut is shmem_float_iput: the strided put (strides in elements).
func FloatIPut(p *PE, target, source tshmem.Ref[float32], tst, sst int64, nelems, pe int) error {
	return tshmem.IPut(p, target, source, tst, sst, nelems, pe)
}

// FloatIGet is shmem_float_iget: the strided get.
func FloatIGet(p *PE, target, source tshmem.Ref[float32], tst, sst int64, nelems, pe int) error {
	return tshmem.IGet(p, target, source, tst, sst, nelems, pe)
}

// DoublePut is shmem_double_put: copy nelems elements of the local
// source slice into target on PE pe (non-blocking put semantics).
func DoublePut(p *PE, target tshmem.Ref[float64], source []float64, nelems, pe int) error {
	if err := checkN(len(source), nelems); err != nil {
		return err
	}
	return tshmem.PutSlice(p, target.Slice(0, min(nelems, target.Len())), source[:nelems], pe)
}

// DoubleGet is shmem_double_get: copy nelems elements of source on PE pe
// into the local target slice (blocking).
func DoubleGet(p *PE, target []float64, source tshmem.Ref[float64], nelems, pe int) error {
	if err := checkN(len(target), nelems); err != nil {
		return err
	}
	return tshmem.GetSlice(p, target[:nelems], source.Slice(0, min(nelems, source.Len())), pe)
}

// DoubleP is shmem_double_p: the elemental put.
func DoubleP(p *PE, target tshmem.Ref[float64], value float64, pe int) error {
	return tshmem.P(p, target, value, pe)
}

// DoubleG is shmem_double_g: the elemental get.
func DoubleG(p *PE, source tshmem.Ref[float64], pe int) (float64, error) {
	return tshmem.G(p, source, pe)
}

// DoubleIPut is shmem_double_iput: the strided put (strides in elements).
func DoubleIPut(p *PE, target, source tshmem.Ref[float64], tst, sst int64, nelems, pe int) error {
	return tshmem.IPut(p, target, source, tst, sst, nelems, pe)
}

// DoubleIGet is shmem_double_iget: the strided get.
func DoubleIGet(p *PE, target, source tshmem.Ref[float64], tst, sst int64, nelems, pe int) error {
	return tshmem.IGet(p, target, source, tst, sst, nelems, pe)
}

// ShortSumToAll is shmem_short_sum_to_all.
func ShortSumToAll(p *PE, target, source tshmem.Ref[int16], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int16], pSync tshmem.PSync) error {
	return tshmem.SumToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// ShortProdToAll is shmem_short_prod_to_all.
func ShortProdToAll(p *PE, target, source tshmem.Ref[int16], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int16], pSync tshmem.PSync) error {
	return tshmem.ProdToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// ShortMinToAll is shmem_short_min_to_all.
func ShortMinToAll(p *PE, target, source tshmem.Ref[int16], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int16], pSync tshmem.PSync) error {
	return tshmem.MinToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// ShortMaxToAll is shmem_short_max_to_all.
func ShortMaxToAll(p *PE, target, source tshmem.Ref[int16], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int16], pSync tshmem.PSync) error {
	return tshmem.MaxToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// ShortAndToAll is shmem_short_and_to_all.
func ShortAndToAll(p *PE, target, source tshmem.Ref[int16], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int16], pSync tshmem.PSync) error {
	return tshmem.AndToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// ShortOrToAll is shmem_short_or_to_all.
func ShortOrToAll(p *PE, target, source tshmem.Ref[int16], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int16], pSync tshmem.PSync) error {
	return tshmem.OrToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// ShortXorToAll is shmem_short_xor_to_all.
func ShortXorToAll(p *PE, target, source tshmem.Ref[int16], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int16], pSync tshmem.PSync) error {
	return tshmem.XorToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// IntSumToAll is shmem_int_sum_to_all.
func IntSumToAll(p *PE, target, source tshmem.Ref[int32], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int32], pSync tshmem.PSync) error {
	return tshmem.SumToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// IntProdToAll is shmem_int_prod_to_all.
func IntProdToAll(p *PE, target, source tshmem.Ref[int32], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int32], pSync tshmem.PSync) error {
	return tshmem.ProdToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// IntMinToAll is shmem_int_min_to_all.
func IntMinToAll(p *PE, target, source tshmem.Ref[int32], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int32], pSync tshmem.PSync) error {
	return tshmem.MinToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// IntMaxToAll is shmem_int_max_to_all.
func IntMaxToAll(p *PE, target, source tshmem.Ref[int32], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int32], pSync tshmem.PSync) error {
	return tshmem.MaxToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// IntAndToAll is shmem_int_and_to_all.
func IntAndToAll(p *PE, target, source tshmem.Ref[int32], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int32], pSync tshmem.PSync) error {
	return tshmem.AndToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// IntOrToAll is shmem_int_or_to_all.
func IntOrToAll(p *PE, target, source tshmem.Ref[int32], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int32], pSync tshmem.PSync) error {
	return tshmem.OrToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// IntXorToAll is shmem_int_xor_to_all.
func IntXorToAll(p *PE, target, source tshmem.Ref[int32], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int32], pSync tshmem.PSync) error {
	return tshmem.XorToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// LongSumToAll is shmem_long_sum_to_all.
func LongSumToAll(p *PE, target, source tshmem.Ref[int64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int64], pSync tshmem.PSync) error {
	return tshmem.SumToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// LongProdToAll is shmem_long_prod_to_all.
func LongProdToAll(p *PE, target, source tshmem.Ref[int64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int64], pSync tshmem.PSync) error {
	return tshmem.ProdToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// LongMinToAll is shmem_long_min_to_all.
func LongMinToAll(p *PE, target, source tshmem.Ref[int64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int64], pSync tshmem.PSync) error {
	return tshmem.MinToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// LongMaxToAll is shmem_long_max_to_all.
func LongMaxToAll(p *PE, target, source tshmem.Ref[int64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int64], pSync tshmem.PSync) error {
	return tshmem.MaxToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// LongAndToAll is shmem_long_and_to_all.
func LongAndToAll(p *PE, target, source tshmem.Ref[int64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int64], pSync tshmem.PSync) error {
	return tshmem.AndToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// LongOrToAll is shmem_long_or_to_all.
func LongOrToAll(p *PE, target, source tshmem.Ref[int64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int64], pSync tshmem.PSync) error {
	return tshmem.OrToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// LongXorToAll is shmem_long_xor_to_all.
func LongXorToAll(p *PE, target, source tshmem.Ref[int64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int64], pSync tshmem.PSync) error {
	return tshmem.XorToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// LonglongSumToAll is shmem_longlong_sum_to_all.
func LonglongSumToAll(p *PE, target, source tshmem.Ref[int64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int64], pSync tshmem.PSync) error {
	return tshmem.SumToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// LonglongProdToAll is shmem_longlong_prod_to_all.
func LonglongProdToAll(p *PE, target, source tshmem.Ref[int64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int64], pSync tshmem.PSync) error {
	return tshmem.ProdToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// LonglongMinToAll is shmem_longlong_min_to_all.
func LonglongMinToAll(p *PE, target, source tshmem.Ref[int64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int64], pSync tshmem.PSync) error {
	return tshmem.MinToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// LonglongMaxToAll is shmem_longlong_max_to_all.
func LonglongMaxToAll(p *PE, target, source tshmem.Ref[int64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int64], pSync tshmem.PSync) error {
	return tshmem.MaxToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// LonglongAndToAll is shmem_longlong_and_to_all.
func LonglongAndToAll(p *PE, target, source tshmem.Ref[int64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int64], pSync tshmem.PSync) error {
	return tshmem.AndToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// LonglongOrToAll is shmem_longlong_or_to_all.
func LonglongOrToAll(p *PE, target, source tshmem.Ref[int64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int64], pSync tshmem.PSync) error {
	return tshmem.OrToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// LonglongXorToAll is shmem_longlong_xor_to_all.
func LonglongXorToAll(p *PE, target, source tshmem.Ref[int64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[int64], pSync tshmem.PSync) error {
	return tshmem.XorToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// FloatSumToAll is shmem_float_sum_to_all.
func FloatSumToAll(p *PE, target, source tshmem.Ref[float32], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[float32], pSync tshmem.PSync) error {
	return tshmem.SumToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// FloatProdToAll is shmem_float_prod_to_all.
func FloatProdToAll(p *PE, target, source tshmem.Ref[float32], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[float32], pSync tshmem.PSync) error {
	return tshmem.ProdToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// FloatMinToAll is shmem_float_min_to_all.
func FloatMinToAll(p *PE, target, source tshmem.Ref[float32], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[float32], pSync tshmem.PSync) error {
	return tshmem.MinToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// FloatMaxToAll is shmem_float_max_to_all.
func FloatMaxToAll(p *PE, target, source tshmem.Ref[float32], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[float32], pSync tshmem.PSync) error {
	return tshmem.MaxToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// DoubleSumToAll is shmem_double_sum_to_all.
func DoubleSumToAll(p *PE, target, source tshmem.Ref[float64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[float64], pSync tshmem.PSync) error {
	return tshmem.SumToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// DoubleProdToAll is shmem_double_prod_to_all.
func DoubleProdToAll(p *PE, target, source tshmem.Ref[float64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[float64], pSync tshmem.PSync) error {
	return tshmem.ProdToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// DoubleMinToAll is shmem_double_min_to_all.
func DoubleMinToAll(p *PE, target, source tshmem.Ref[float64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[float64], pSync tshmem.PSync) error {
	return tshmem.MinToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// DoubleMaxToAll is shmem_double_max_to_all.
func DoubleMaxToAll(p *PE, target, source tshmem.Ref[float64], nreduce int, as tshmem.ActiveSet, pWrk tshmem.Ref[float64], pSync tshmem.PSync) error {
	return tshmem.MaxToAll(p, target, source, nreduce, as, pWrk, pSync)
}

// IntSwap is shmem_int_swap.
func IntSwap(p *PE, target tshmem.Ref[int32], value int32, pe int) (int32, error) {
	return tshmem.Swap(p, target, value, pe)
}

// LongSwap is shmem_long_swap.
func LongSwap(p *PE, target tshmem.Ref[int64], value int64, pe int) (int64, error) {
	return tshmem.Swap(p, target, value, pe)
}

// LonglongSwap is shmem_longlong_swap.
func LonglongSwap(p *PE, target tshmem.Ref[int64], value int64, pe int) (int64, error) {
	return tshmem.Swap(p, target, value, pe)
}

// FloatSwap is shmem_float_swap.
func FloatSwap(p *PE, target tshmem.Ref[float32], value float32, pe int) (float32, error) {
	return tshmem.Swap(p, target, value, pe)
}

// DoubleSwap is shmem_double_swap.
func DoubleSwap(p *PE, target tshmem.Ref[float64], value float64, pe int) (float64, error) {
	return tshmem.Swap(p, target, value, pe)
}

// IntCSwap is shmem_int_cswap.
func IntCSwap(p *PE, target tshmem.Ref[int32], cond, value int32, pe int) (int32, error) {
	return tshmem.CSwap(p, target, cond, value, pe)
}

// IntFAdd is shmem_int_fadd.
func IntFAdd(p *PE, target tshmem.Ref[int32], value int32, pe int) (int32, error) {
	return tshmem.FAdd(p, target, value, pe)
}

// IntFInc is shmem_int_finc.
func IntFInc(p *PE, target tshmem.Ref[int32], pe int) (int32, error) {
	return tshmem.FInc(p, target, pe)
}

// IntAdd is shmem_int_add.
func IntAdd(p *PE, target tshmem.Ref[int32], value int32, pe int) error {
	return tshmem.Add(p, target, value, pe)
}

// IntInc is shmem_int_inc.
func IntInc(p *PE, target tshmem.Ref[int32], pe int) error {
	return tshmem.Inc(p, target, pe)
}

// LongCSwap is shmem_long_cswap.
func LongCSwap(p *PE, target tshmem.Ref[int64], cond, value int64, pe int) (int64, error) {
	return tshmem.CSwap(p, target, cond, value, pe)
}

// LongFAdd is shmem_long_fadd.
func LongFAdd(p *PE, target tshmem.Ref[int64], value int64, pe int) (int64, error) {
	return tshmem.FAdd(p, target, value, pe)
}

// LongFInc is shmem_long_finc.
func LongFInc(p *PE, target tshmem.Ref[int64], pe int) (int64, error) {
	return tshmem.FInc(p, target, pe)
}

// LongAdd is shmem_long_add.
func LongAdd(p *PE, target tshmem.Ref[int64], value int64, pe int) error {
	return tshmem.Add(p, target, value, pe)
}

// LongInc is shmem_long_inc.
func LongInc(p *PE, target tshmem.Ref[int64], pe int) error {
	return tshmem.Inc(p, target, pe)
}

// LonglongCSwap is shmem_longlong_cswap.
func LonglongCSwap(p *PE, target tshmem.Ref[int64], cond, value int64, pe int) (int64, error) {
	return tshmem.CSwap(p, target, cond, value, pe)
}

// LonglongFAdd is shmem_longlong_fadd.
func LonglongFAdd(p *PE, target tshmem.Ref[int64], value int64, pe int) (int64, error) {
	return tshmem.FAdd(p, target, value, pe)
}

// LonglongFInc is shmem_longlong_finc.
func LonglongFInc(p *PE, target tshmem.Ref[int64], pe int) (int64, error) {
	return tshmem.FInc(p, target, pe)
}

// LonglongAdd is shmem_longlong_add.
func LonglongAdd(p *PE, target tshmem.Ref[int64], value int64, pe int) error {
	return tshmem.Add(p, target, value, pe)
}

// LonglongInc is shmem_longlong_inc.
func LonglongInc(p *PE, target tshmem.Ref[int64], pe int) error {
	return tshmem.Inc(p, target, pe)
}

// ShortWait is shmem_short_wait: block until the variable changes
// from value.
func ShortWait(p *PE, ivar tshmem.Ref[int16], value int16) error {
	return tshmem.Wait(p, ivar, value)
}

// ShortWaitUntil is shmem_short_wait_until.
func ShortWaitUntil(p *PE, ivar tshmem.Ref[int16], cmp tshmem.Cmp, value int16) error {
	return tshmem.WaitUntil(p, ivar, cmp, value)
}

// IntWait is shmem_int_wait: block until the variable changes
// from value.
func IntWait(p *PE, ivar tshmem.Ref[int32], value int32) error {
	return tshmem.Wait(p, ivar, value)
}

// IntWaitUntil is shmem_int_wait_until.
func IntWaitUntil(p *PE, ivar tshmem.Ref[int32], cmp tshmem.Cmp, value int32) error {
	return tshmem.WaitUntil(p, ivar, cmp, value)
}

// LongWait is shmem_long_wait: block until the variable changes
// from value.
func LongWait(p *PE, ivar tshmem.Ref[int64], value int64) error {
	return tshmem.Wait(p, ivar, value)
}

// LongWaitUntil is shmem_long_wait_until.
func LongWaitUntil(p *PE, ivar tshmem.Ref[int64], cmp tshmem.Cmp, value int64) error {
	return tshmem.WaitUntil(p, ivar, cmp, value)
}

// LonglongWait is shmem_longlong_wait: block until the variable changes
// from value.
func LonglongWait(p *PE, ivar tshmem.Ref[int64], value int64) error {
	return tshmem.Wait(p, ivar, value)
}

// LonglongWaitUntil is shmem_longlong_wait_until.
func LonglongWaitUntil(p *PE, ivar tshmem.Ref[int64], cmp tshmem.Cmp, value int64) error {
	return tshmem.WaitUntil(p, ivar, cmp, value)
}
