package shmemc_test

import (
	"errors"
	"testing"

	"tshmem"
	"tshmem/shmemc"
)

func run(t *testing.T, npes int, body func(pe *shmemc.PE) error) {
	t.Helper()
	cfg := tshmem.Config{Chip: tshmem.TileGx8036(), NPEs: npes, HeapPerPE: 1 << 20}
	if _, err := tshmem.Run(cfg, body); err != nil {
		t.Fatal(err)
	}
}

// TestTypedPutGetFamilies exercises one put/get/p/g/iput/iget round per C
// type family.
func TestTypedPutGetFamilies(t *testing.T) {
	run(t, 2, func(pe *shmemc.PE) error {
		me := pe.MyPE()
		other := 1 - me

		// short
		s16, err := tshmem.Malloc[int16](pe, 8)
		if err != nil {
			return err
		}
		// int
		s32, err := tshmem.Malloc[int32](pe, 8)
		if err != nil {
			return err
		}
		// long / long long
		s64, err := tshmem.Malloc[int64](pe, 8)
		if err != nil {
			return err
		}
		// float / double
		f32, err := tshmem.Malloc[float32](pe, 8)
		if err != nil {
			return err
		}
		f64, err := tshmem.Malloc[float64](pe, 8)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}

		if me == 0 {
			if err := shmemc.ShortPut(pe, s16, []int16{1, 2, 3, 4}, 4, other); err != nil {
				return err
			}
			if err := shmemc.IntPut(pe, s32, []int32{10, 20}, 2, other); err != nil {
				return err
			}
			if err := shmemc.LongPut(pe, s64, []int64{100}, 1, other); err != nil {
				return err
			}
			if err := shmemc.FloatPut(pe, f32, []float32{1.5}, 1, other); err != nil {
				return err
			}
			if err := shmemc.DoublePut(pe, f64, []float64{2.5}, 1, other); err != nil {
				return err
			}
			if err := shmemc.LonglongP(pe, s64.At(7), int64(-7), other); err != nil {
				return err
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if me == 1 {
			got16 := make([]int16, 4)
			if err := shmemc.ShortGet(pe, got16, s16, 4, me); err != nil {
				return err
			}
			if got16[3] != 4 {
				t.Errorf("short: %v", got16)
			}
			v32, err := shmemc.IntG(pe, s32.At(1), me)
			if err != nil || v32 != 20 {
				t.Errorf("int g: %v %v", v32, err)
			}
			v64, err := shmemc.LongG(pe, s64, me)
			if err != nil || v64 != 100 {
				t.Errorf("long g: %v %v", v64, err)
			}
			vf, err := shmemc.FloatG(pe, f32, me)
			if err != nil || vf != 1.5 {
				t.Errorf("float g: %v %v", vf, err)
			}
			vd, err := shmemc.DoubleG(pe, f64, me)
			if err != nil || vd != 2.5 {
				t.Errorf("double g: %v %v", vd, err)
			}
			vll, err := shmemc.LonglongG(pe, s64.At(7), me)
			if err != nil || vll != -7 {
				t.Errorf("longlong g: %v %v", vll, err)
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}

		// Strided round trip: int family.
		if me == 0 {
			src := tshmem.MustLocal(pe, s32)
			for i := range src {
				src[i] = int32(i)
			}
			if err := shmemc.IntIPut(pe, s32, s32, 2, 1, 4, other); err != nil {
				return err
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if me == 1 {
			v := tshmem.MustLocal(pe, s32)
			for i := 0; i < 4; i++ {
				if v[2*i] != int32(i) {
					t.Errorf("iput: v[%d] = %d", 2*i, v[2*i])
				}
			}
			if err := shmemc.ShortIGet(pe, s16, s16, 1, 1, 4, me); err != nil {
				return err
			}
		}
		return pe.BarrierAll()
	})
}

func TestSizedAndMem(t *testing.T) {
	run(t, 2, func(pe *shmemc.PE) error {
		b, err := tshmem.Malloc[byte](pe, 16)
		if err != nil {
			return err
		}
		w32, err := tshmem.Malloc[int32](pe, 4)
		if err != nil {
			return err
		}
		w64, err := tshmem.Malloc[int64](pe, 4)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if err := shmemc.Putmem(pe, b, []byte("hello"), 5, 1); err != nil {
				return err
			}
			if err := shmemc.Put32(pe, w32, []int32{7, 8}, 2, 1); err != nil {
				return err
			}
			if err := shmemc.Put64(pe, w64, []int64{9}, 1, 1); err != nil {
				return err
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 1 {
			got := make([]byte, 5)
			if err := shmemc.Getmem(pe, got, b, 5, 1); err != nil {
				return err
			}
			if string(got) != "hello" {
				t.Errorf("putmem: %q", got)
			}
			g32 := make([]int32, 2)
			if err := shmemc.Get32(pe, g32, w32, 2, 1); err != nil {
				return err
			}
			if g32[1] != 8 {
				t.Errorf("put32: %v", g32)
			}
			g64 := make([]int64, 1)
			if err := shmemc.Get64(pe, g64, w64, 1, 1); err != nil {
				return err
			}
			if g64[0] != 9 {
				t.Errorf("put64: %v", g64)
			}
		}
		// Count validation.
		if err := shmemc.Putmem(pe, b, []byte("x"), 5, 0); !errors.Is(err, tshmem.ErrBounds) {
			t.Errorf("oversize putmem count: %v", err)
		}
		if err := shmemc.IntPut(pe, w32, []int32{1}, -1, 0); !errors.Is(err, tshmem.ErrBounds) {
			t.Errorf("negative count: %v", err)
		}
		return pe.BarrierAll()
	})
}

// TestReductionsAllTypesAllOps drives every generated reduction wrapper.
func TestReductionsAllTypesAllOps(t *testing.T) {
	const n = 4
	run(t, n, func(pe *shmemc.PE) error {
		as := tshmem.AllPEs(n)
		me := int64(pe.MyPE() + 1)

		check := func(got, want int64, what string) {
			if got != want {
				t.Errorf("%s = %d, want %d", what, got, want)
			}
		}

		// int64 family: all seven ops.
		t64, _ := tshmem.Malloc[int64](pe, 1)
		s64, _ := tshmem.Malloc[int64](pe, 1)
		w64, _ := tshmem.Malloc[int64](pe, tshmem.ReduceMinWrkSize)
		ps, err := tshmem.Malloc[int64](pe, tshmem.ReduceSyncSize)
		if err != nil {
			return err
		}
		tshmem.MustLocal(pe, s64)[0] = me
		if err := shmemc.LongSumToAll(pe, t64, s64, 1, as, w64, ps); err != nil {
			return err
		}
		check(tshmem.MustLocal(pe, t64)[0], 10, "long sum")
		if err := shmemc.LonglongProdToAll(pe, t64, s64, 1, as, w64, ps); err != nil {
			return err
		}
		check(tshmem.MustLocal(pe, t64)[0], 24, "longlong prod")
		if err := shmemc.LongMinToAll(pe, t64, s64, 1, as, w64, ps); err != nil {
			return err
		}
		check(tshmem.MustLocal(pe, t64)[0], 1, "long min")
		if err := shmemc.LongMaxToAll(pe, t64, s64, 1, as, w64, ps); err != nil {
			return err
		}
		check(tshmem.MustLocal(pe, t64)[0], 4, "long max")
		tshmem.MustLocal(pe, s64)[0] = 1 << uint(pe.MyPE())
		if err := shmemc.LongOrToAll(pe, t64, s64, 1, as, w64, ps); err != nil {
			return err
		}
		check(tshmem.MustLocal(pe, t64)[0], 15, "long or")
		if err := shmemc.LongAndToAll(pe, t64, s64, 1, as, w64, ps); err != nil {
			return err
		}
		check(tshmem.MustLocal(pe, t64)[0], 0, "long and")
		if err := shmemc.LongXorToAll(pe, t64, s64, 1, as, w64, ps); err != nil {
			return err
		}
		check(tshmem.MustLocal(pe, t64)[0], 15, "long xor")

		// short and int families: sum.
		t16, _ := tshmem.Malloc[int16](pe, 1)
		s16, _ := tshmem.Malloc[int16](pe, 1)
		w16, err := tshmem.Malloc[int16](pe, tshmem.ReduceMinWrkSize)
		if err != nil {
			return err
		}
		tshmem.MustLocal(pe, s16)[0] = int16(me)
		if err := shmemc.ShortSumToAll(pe, t16, s16, 1, as, w16, ps); err != nil {
			return err
		}
		check(int64(tshmem.MustLocal(pe, t16)[0]), 10, "short sum")

		t32, _ := tshmem.Malloc[int32](pe, 1)
		s32, _ := tshmem.Malloc[int32](pe, 1)
		w32, err := tshmem.Malloc[int32](pe, tshmem.ReduceMinWrkSize)
		if err != nil {
			return err
		}
		tshmem.MustLocal(pe, s32)[0] = int32(me)
		if err := shmemc.IntXorToAll(pe, t32, s32, 1, as, w32, ps); err != nil {
			return err
		}
		check(int64(tshmem.MustLocal(pe, t32)[0]), 1^2^3^4, "int xor")

		// float and double: sum and max.
		tf, _ := tshmem.Malloc[float32](pe, 1)
		sf, _ := tshmem.Malloc[float32](pe, 1)
		wf, err := tshmem.Malloc[float32](pe, tshmem.ReduceMinWrkSize)
		if err != nil {
			return err
		}
		tshmem.MustLocal(pe, sf)[0] = float32(me) / 2
		if err := shmemc.FloatSumToAll(pe, tf, sf, 1, as, wf, ps); err != nil {
			return err
		}
		if got := tshmem.MustLocal(pe, tf)[0]; got != 5 {
			t.Errorf("float sum = %v", got)
		}
		td, _ := tshmem.Malloc[float64](pe, 1)
		sd, _ := tshmem.Malloc[float64](pe, 1)
		wd, err := tshmem.Malloc[float64](pe, tshmem.ReduceMinWrkSize)
		if err != nil {
			return err
		}
		tshmem.MustLocal(pe, sd)[0] = float64(me)
		if err := shmemc.DoubleMaxToAll(pe, td, sd, 1, as, wd, ps); err != nil {
			return err
		}
		if got := tshmem.MustLocal(pe, td)[0]; got != 4 {
			t.Errorf("double max = %v", got)
		}
		return pe.BarrierAll()
	})
}

func TestCollectivesAndAtomics(t *testing.T) {
	const n = 3
	run(t, n, func(pe *shmemc.PE) error {
		as := tshmem.AllPEs(n)
		ps, err := tshmem.Malloc[int64](pe, tshmem.CollectSyncSize)
		if err != nil {
			return err
		}
		src, _ := tshmem.Malloc[int32](pe, 2)
		dst, _ := tshmem.Malloc[int32](pe, 2*n)
		tshmem.MustLocal(pe, src)[0] = int32(pe.MyPE())
		tshmem.MustLocal(pe, src)[1] = int32(pe.MyPE() * 10)
		if err := shmemc.FCollect32(pe, dst, src, 2, as, ps); err != nil {
			return err
		}
		got := tshmem.MustLocal(pe, dst)
		if got[4] != 2 || got[5] != 20 {
			t.Errorf("fcollect32: %v", got)
		}
		if err := shmemc.Broadcast32(pe, dst, src, 2, 1, as, ps); err != nil {
			return err
		}
		if pe.MyPE() != 1 && tshmem.MustLocal(pe, dst)[0] != 1 {
			t.Errorf("broadcast32: %v", tshmem.MustLocal(pe, dst)[0])
		}
		if err := shmemc.Collect32(pe, dst, src, pe.MyPE(), as, ps); err != nil {
			return err
		}
		b64s, _ := tshmem.Malloc[int64](pe, 2)
		b64d, _ := tshmem.Malloc[int64](pe, 2*n)
		if err := shmemc.Broadcast64(pe, b64d, b64s, 2, 0, as, ps); err != nil {
			return err
		}
		if err := shmemc.FCollect64(pe, b64d, b64s, 2, as, ps); err != nil {
			return err
		}
		if err := shmemc.Collect64(pe, b64d, b64s, 1, as, ps); err != nil {
			return err
		}

		// Atomics.
		ctr, err := tshmem.Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if err := shmemc.LongInc(pe, ctr, 0); err != nil {
			return err
		}
		if err := shmemc.LonglongAdd(pe, ctr, 2, 0); err != nil {
			return err
		}
		if _, err := shmemc.IntFInc(pe, mustMalloc32(pe), pe.MyPE()); err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if got := tshmem.MustLocal(pe, ctr)[0]; got != 9 {
				t.Errorf("counter = %d, want 9", got)
			}
			old, err := shmemc.Swap(pe, ctr, 0, 0)
			if err != nil || old != 9 {
				t.Errorf("swap: %d %v", old, err)
			}
			if _, err := shmemc.DoubleSwap(pe, mustMallocF64(pe), 1.5, 0); err != nil {
				return err
			}
			if _, err := shmemc.LongCSwap(pe, ctr, 0, 5, 0); err != nil {
				return err
			}
			if v, err := shmemc.LongFAdd(pe, ctr, 5, 0); err != nil || v != 5 {
				t.Errorf("fadd: %d %v", v, err)
			}
		} else {
			mustMallocF64(pe)
		}
		return pe.BarrierAll()
	})
}

// mustMalloc32 allocates a one-element int32 symmetric object; collective.
func mustMalloc32(pe *shmemc.PE) tshmem.Ref[int32] {
	r, err := tshmem.Malloc[int32](pe, 1)
	if err != nil {
		panic(err)
	}
	return r
}

func mustMallocF64(pe *shmemc.PE) tshmem.Ref[float64] {
	r, err := tshmem.Malloc[float64](pe, 1)
	if err != nil {
		panic(err)
	}
	return r
}

func TestEnvWrappers(t *testing.T) {
	run(t, 3, func(pe *shmemc.PE) error {
		if shmemc.MyPE(pe) != pe.MyPE() || shmemc.NPEs(pe) != 3 {
			t.Error("env wrappers wrong")
		}
		if !shmemc.PEAccessible(pe, 2) || shmemc.PEAccessible(pe, 5) {
			t.Error("accessibility wrapper wrong")
		}
		if err := shmemc.BarrierAll(pe); err != nil {
			return err
		}
		if err := shmemc.Barrier(pe, 0, 0, 3); err != nil {
			return err
		}
		shmemc.Fence(pe)
		shmemc.Quiet(pe)
		lock, err := tshmem.Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		if err := shmemc.SetLock(pe, lock); err != nil {
			return err
		}
		if held, err := shmemc.TestLock(pe, lock); err == nil && !held && pe.MyPE() >= 0 {
			// TestLock acquired it if SetLock raced; tolerate either.
			_ = held
		}
		if err := shmemc.ClearLock(pe, lock); err != nil {
			return err
		}
		return shmemc.Finalize(pe)
	})
}

func TestWaits(t *testing.T) {
	run(t, 2, func(pe *shmemc.PE) error {
		f16, _ := tshmem.Malloc[int16](pe, 1)
		f32, _ := tshmem.Malloc[int32](pe, 1)
		f64, _ := tshmem.Malloc[int64](pe, 1)
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if err := shmemc.ShortP(pe, f16, 5, 1); err != nil {
				return err
			}
			if err := shmemc.IntP(pe, f32, 6, 1); err != nil {
				return err
			}
			if err := shmemc.LongP(pe, f64, 7, 1); err != nil {
				return err
			}
		} else {
			if err := shmemc.ShortWaitUntil(pe, f16, tshmem.CmpEQ, 5); err != nil {
				return err
			}
			if err := shmemc.IntWait(pe, f32, 0); err != nil {
				return err
			}
			if err := shmemc.LongWaitUntil(pe, f64, tshmem.CmpGE, 7); err != nil {
				return err
			}
			if err := shmemc.LonglongWait(pe, f64, 0); err != nil {
				return err
			}
		}
		return pe.BarrierAll()
	})
}
