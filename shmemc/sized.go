package shmemc

import "tshmem"

// Sized and raw-memory operations (shmem_put32/64, shmem_putmem, the sized
// broadcast/collect collectives).

func checkN(have, want int) error {
	if want < 0 || want > have {
		return tshmem.ErrBounds
	}
	return nil
}

// Put32 is shmem_put32: a block put of 32-bit elements.
func Put32(p *PE, target tshmem.Ref[int32], source []int32, nelems, pe int) error {
	return IntPut(p, target, source, nelems, pe)
}

// Put64 is shmem_put64: a block put of 64-bit elements.
func Put64(p *PE, target tshmem.Ref[int64], source []int64, nelems, pe int) error {
	return LongPut(p, target, source, nelems, pe)
}

// Get32 is shmem_get32.
func Get32(p *PE, target []int32, source tshmem.Ref[int32], nelems, pe int) error {
	return IntGet(p, target, source, nelems, pe)
}

// Get64 is shmem_get64.
func Get64(p *PE, target []int64, source tshmem.Ref[int64], nelems, pe int) error {
	return LongGet(p, target, source, nelems, pe)
}

// Putmem is shmem_putmem: a raw byte put.
func Putmem(p *PE, target tshmem.Ref[byte], source []byte, nbytes, pe int) error {
	if err := checkN(len(source), nbytes); err != nil {
		return err
	}
	return tshmem.PutSlice(p, target.Slice(0, min(nbytes, target.Len())), source[:nbytes], pe)
}

// Getmem is shmem_getmem: a raw byte get.
func Getmem(p *PE, target []byte, source tshmem.Ref[byte], nbytes, pe int) error {
	if err := checkN(len(target), nbytes); err != nil {
		return err
	}
	return tshmem.GetSlice(p, target[:nbytes], source.Slice(0, min(nbytes, source.Len())), pe)
}

// Broadcast32 is shmem_broadcast32: broadcast of 32-bit elements.
func Broadcast32(p *PE, target, source tshmem.Ref[int32], nelems, peRoot int, as tshmem.ActiveSet, pSync tshmem.PSync) error {
	return tshmem.Broadcast(p, target, source, nelems, peRoot, as, pSync)
}

// Broadcast64 is shmem_broadcast64.
func Broadcast64(p *PE, target, source tshmem.Ref[int64], nelems, peRoot int, as tshmem.ActiveSet, pSync tshmem.PSync) error {
	return tshmem.Broadcast(p, target, source, nelems, peRoot, as, pSync)
}

// Collect32 is shmem_collect32: variable-size collection of 32-bit
// elements.
func Collect32(p *PE, target, source tshmem.Ref[int32], nelems int, as tshmem.ActiveSet, pSync tshmem.PSync) error {
	return tshmem.Collect(p, target, source, nelems, as, pSync)
}

// Collect64 is shmem_collect64.
func Collect64(p *PE, target, source tshmem.Ref[int64], nelems int, as tshmem.ActiveSet, pSync tshmem.PSync) error {
	return tshmem.Collect(p, target, source, nelems, as, pSync)
}

// FCollect32 is shmem_fcollect32: same-size collection of 32-bit elements.
func FCollect32(p *PE, target, source tshmem.Ref[int32], nelems int, as tshmem.ActiveSet, pSync tshmem.PSync) error {
	return tshmem.FCollect(p, target, source, nelems, as, pSync)
}

// FCollect64 is shmem_fcollect64.
func FCollect64(p *PE, target, source tshmem.Ref[int64], nelems int, as tshmem.ActiveSet, pSync tshmem.PSync) error {
	return tshmem.FCollect(p, target, source, nelems, as, pSync)
}

// Swap is shmem_swap: the untyped (long) swap.
func Swap(p *PE, target tshmem.Ref[int64], value int64, pe int) (int64, error) {
	return tshmem.Swap(p, target, value, pe)
}

// MyPE is shmem_my_pe / _my_pe.
func MyPE(p *PE) int { return p.MyPE() }

// NPEs is shmem_n_pes / _num_pes.
func NPEs(p *PE) int { return p.NumPEs() }

// PEAccessible is shmem_pe_accessible.
func PEAccessible(p *PE, pe int) bool { return p.PEAccessible(pe) }

// BarrierAll is shmem_barrier_all.
func BarrierAll(p *PE) error { return p.BarrierAll() }

// Barrier is shmem_barrier over the active-set triplet.
func Barrier(p *PE, peStart, logPEStride, peSize int) error {
	return p.Barrier(tshmem.ActiveSet{Start: peStart, LogStride: logPEStride, Size: peSize})
}

// Fence is shmem_fence.
func Fence(p *PE) { p.Fence() }

// Quiet is shmem_quiet.
func Quiet(p *PE) { p.Quiet() }

// SetLock is shmem_set_lock.
func SetLock(p *PE, lock tshmem.Ref[int64]) error { return p.SetLock(lock) }

// ClearLock is shmem_clear_lock.
func ClearLock(p *PE, lock tshmem.Ref[int64]) error { return p.ClearLock(lock) }

// TestLock is shmem_test_lock.
func TestLock(p *PE, lock tshmem.Ref[int64]) (bool, error) { return p.TestLock(lock) }

// Finalize is the shmem_finalize extension the paper proposes.
func Finalize(p *PE) error { return p.Finalize() }
