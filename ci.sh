#!/bin/sh
# Tier-1 gate: every change must pass this before merging.
#
#   ./ci.sh          # gofmt + vet + race-enabled tests + bench smoke
#   ./ci.sh -short   # skip the slow shape tests (Figure 13/14 case studies)
#
# Pure Go, standard library only — no tools beyond the go toolchain.
set -eu
cd "$(dirname "$0")"

echo "== gofmt -l =="
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

# -race slows the case-study shape tests past go test's default 10m
# per-package timeout; -short skips them, the full run needs the headroom.
echo "== go test -race -timeout 45m ./... $* =="
go test -race -timeout 45m "$@" ./...

# Bench smoke: rerun the probe suite and diff it against the committed
# baseline. Virtual time is deterministic, so on an unmodified tree this
# compares exactly. A drift past 5% warns (calibration moved: refresh
# BENCH_baseline.json deliberately and explain it in the commit); past
# 25% it fails the gate outright.
echo "== bench smoke: probe suite vs BENCH_baseline.json =="
SMOKE=$(mktemp /tmp/tshmem-smoke.XXXXXX.json)
PPROF=$(mktemp /tmp/tshmem-pprof.XXXXXX.pb.gz)
trap 'rm -f "$SMOKE" "$PPROF"' EXIT
go run ./cmd/tshmem-bench -json "$SMOKE"
if ! go run ./cmd/tshmem-bench -compare BENCH_baseline.json "$SMOKE" -threshold 25%; then
    echo "ci: FAIL — probe metrics regressed more than 25% vs BENCH_baseline.json" >&2
    exit 1
fi
if ! go run ./cmd/tshmem-bench -compare BENCH_baseline.json "$SMOKE" -threshold 5% > /dev/null; then
    echo "ci: WARNING — probe metrics drifted more than 5% vs BENCH_baseline.json;"
    echo "    if intentional, regenerate it: go run ./cmd/tshmem-bench -json BENCH_baseline.json"
fi

# Sanitize smoke: the library's own probes must be synchronization-clean
# under the happens-before checker, and the deliberately racy programs in
# internal/sanitize's tests must be flagged (they run as part of go test
# above; this stage exercises the TSHMEM_SANITIZE env + CLI plumbing on
# a real workload end to end). docs/OBSERVABILITY.md documents the
# diagnostic schema.
echo "== sanitize smoke: probes clean under the happens-before checker =="
TSHMEM_SANITIZE=1 go run ./cmd/tshmem-bench -sanitize -probe put > /dev/null
TSHMEM_SANITIZE=1 go run ./cmd/tshmem-bench -sanitize -probe bcast > /dev/null
TSHMEM_SANITIZE=1 go run ./cmd/tshmem-bench -sanitize -probe barrier > /dev/null

# Sync-algo smoke: every selectable barrier algorithm must run the
# barrier probe sanitizer-clean (the library algorithms publish the same
# happens-before edges as the paper's chain; docs/SYNC.md), and the
# crossover sweep must render end to end. The default-algorithm
# byte-identity is already enforced by the cmp below — ProbeOpts zero
# values select the legacy algorithms.
echo "== sync-algo smoke: probes clean under every barrier algorithm + sweep =="
for ALGO in linear tmc-spin counter dissemination tournament mcs-tree; do
    TSHMEM_SANITIZE=1 go run ./cmd/tshmem-bench -sanitize -probe barrier \
        -barrier-algo "$ALGO" > /dev/null
done
for ALGO in cas ticket mcs; do
    TSHMEM_SANITIZE=1 go run ./cmd/tshmem-bench -sanitize -probe barrier \
        -lock-algo "$ALGO" > /dev/null
done
go run ./cmd/tshmem-bench -sweep-algos > /dev/null

# Profile smoke: the causal profiler must explain a probe end to end —
# the profiled barrier probe's output has to blame the barrier machinery
# by name, and the pprof export must be readable by an unmodified
# `go tool pprof` (docs/OBSERVABILITY.md). Profiling is observation-only:
# the -json suite above runs with Config.Profile off, so the baseline
# byte-identity cmp in the fault smoke below doubles as the gate that a
# profiler-off run does not move a single modeled picosecond.
echo "== profile smoke: blame ledger + critical path + pprof export =="
PROF_OUT=$(go run ./cmd/tshmem-bench -probe barrier -profile -critical-path)
echo "$PROF_OUT" | grep 'barrier.wait' > /dev/null || {
    echo "ci: FAIL — profiled barrier probe never blames barrier.wait" >&2
    echo "$PROF_OUT" >&2
    exit 1
}
echo "$PROF_OUT" | grep 'critical path' > /dev/null || {
    echo "ci: FAIL — -critical-path printed no critical path" >&2
    echo "$PROF_OUT" >&2
    exit 1
}
go run ./cmd/tshmem-bench -probe barrier -pprof "$PPROF" > /dev/null
go tool pprof -top "$PPROF" | grep 'barrier.wait' > /dev/null || {
    echo "ci: FAIL — go tool pprof cannot read the profiler's protobuf export" >&2
    exit 1
}

# Alloc smoke: the uninstrumented Put and Barrier fast paths must stay
# allocation-free (docs/PERFORMANCE.md) — including the sanitizer-off
# and profiler-off hook sites (pe.san and pe.prof stay nil), so
# TSHMEM_SANITIZE is explicitly cleared here and the benchmarks leave
# Config.Profile unset. A fixed -benchtime keeps this fast; -benchmem
# prints "N allocs/op" which we grep for nonzero N.
echo "== bench-alloc smoke: Put/Barrier must report 0 allocs/op =="
ALLOC_OUT=$(env -u TSHMEM_SANITIZE go test ./internal/bench -run '^$' \
    -bench '^(BenchmarkPut|BenchmarkBarrier)(Event)?$' -benchtime 100x -benchmem)
echo "$ALLOC_OUT"
if echo "$ALLOC_OUT" | grep -E 'Benchmark(Put|Barrier)(Event)?\b' | grep -vE '\s0 allocs/op'; then
    echo "ci: FAIL — steady-state Put/Barrier paths allocate; see docs/PERFORMANCE.md" >&2
    exit 1
fi

# Fault smoke: with faults off the probe JSON must be byte-identical to
# the committed baseline — the injection hook sites are nil-guarded
# no-ops, so arming nothing may not move a single modeled picosecond
# (docs/ROBUSTNESS.md). The threshold compare above tolerates drift;
# this does not. Then the demo stall plan must terminate (bounded waits,
# zero hangs) and surface a timeout diagnostic naming the stalled PE.
echo "== fault smoke: faults-off byte-identity + bounded-wait demo =="
if ! cmp -s BENCH_baseline.json "$SMOKE"; then
    echo "ci: FAIL — faults-off probe JSON differs from BENCH_baseline.json byte-for-byte;" >&2
    echo "    fault hooks must be exact no-ops when Config.Faults is nil" >&2
    exit 1
fi
FAULT_OUT=$(go run ./cmd/tshmem-bench -faults 'stall:pe=3,q=0')
echo "$FAULT_OUT" | grep 'fault event 0' > /dev/null || {
    echo "ci: FAIL — demo stall plan produced no attributed fault trigger" >&2
    echo "$FAULT_OUT" >&2
    exit 1
}
echo "$FAULT_OUT" | grep 'timeout' | grep 'PE 3' > /dev/null || {
    echo "ci: FAIL — demo stall plan produced no timeout diagnostic naming PE 3" >&2
    echo "$FAULT_OUT" >&2
    exit 1
}

# Engine smoke: the event engine is a host scheduling policy and may not
# move a single modeled picosecond (docs/PERFORMANCE.md, "Engines"). Its
# probe suite must be byte-identical to the committed baseline; the
# sanitize, fault, and profile machinery must work unmodified on top of
# it; and the scaling gate must show the engine earning its keep — at
# 128 concurrent runs, >= 2x the goroutine engine's throughput with at
# most 2 runnable host goroutines per run (measured in fresh processes;
# internal/bench/engine_bench_test.go explains why in-process
# measurement flatters the second engine measured).
echo "== engine smoke: event engine byte-identity + smokes + scaling gate =="
EVSMOKE=$(mktemp /tmp/tshmem-evsmoke.XXXXXX.json)
trap 'rm -f "$SMOKE" "$PPROF" "$EVSMOKE"' EXIT
go run ./cmd/tshmem-bench -engine event -json "$EVSMOKE"
if ! cmp -s BENCH_baseline.json "$EVSMOKE"; then
    echo "ci: FAIL — event-engine probe JSON differs from BENCH_baseline.json" >&2
    echo "    byte-for-byte; engines must not move virtual time" >&2
    exit 1
fi
if ! go run ./cmd/tshmem-bench -engine event \
        -compare BENCH_baseline.json "$EVSMOKE" -threshold 5% > /dev/null; then
    echo "ci: FAIL — -compare disagrees with cmp on the event-engine suite" >&2
    exit 1
fi
TSHMEM_SANITIZE=1 go run ./cmd/tshmem-bench -engine event -sanitize -probe barrier > /dev/null
go run ./cmd/tshmem-bench -engine event -faults 'stall:pe=3,q=0' \
    | grep 'timeout' | grep 'PE 3' > /dev/null || {
    echo "ci: FAIL — event engine lost the stall timeout diagnostic for PE 3" >&2
    exit 1
}
go run ./cmd/tshmem-bench -engine event -probe barrier -profile \
    | grep 'barrier.wait' > /dev/null || {
    echo "ci: FAIL — event-engine profiled barrier probe never blames barrier.wait" >&2
    exit 1
}
TSHMEM_ENGINE_GATE=1 go test ./internal/bench -run '^TestEngineScalingGate$' -count=1

# Big-mesh smoke: the sparse mesh layer must keep a 64x64 synthetic
# geometry at kilobytes (the memory gate fails construction past 32 MiB)
# and sustain the 4096-PE barrier probe with O(n) host memory. The
# geometry gate runs inside the -race pass above too; the probe is
# opt-in (TSHMEM_BIGMESH) because start_pes' all-to-all exchange is
# minutes of host time — this stage runs the goroutine engine at 4096
# PEs and the event engine at 1024 (TSHMEM_BIGMESH=full runs both at
# 4096; docs/ARCHITECTURES.md). No -race: the exchange is ~16.7M channel
# messages and the race detector multiplies that cost several-fold.
echo "== big-mesh smoke: 64x64 geometry memory gate + 4096-PE barrier probe =="
go test ./internal/mesh -run '^TestBigMeshGeometryMemory$' -count=1
TSHMEM_BIGMESH=1 go test ./internal/core -run '^TestBigMeshBarrierProbe$' -count=1 -timeout 15m -v

# Cross-architecture smoke: the chip-family sweep must render end to end
# (Tilera + Epiphany columns; docs/ARCHITECTURES.md). Epiphany sanitizer
# coverage lives in the -race pass above (TestPropertyConformanceNewFamilies
# runs both new families on both engines with the checker on).
echo "== cross-architecture smoke: chip-family sweep =="
go run ./cmd/tshmem-bench -sweep-chips > /dev/null

# Kernel smoke: the scenario corpus (internal/kernels; EXPERIMENTS.md
# "Choosing a kernel for a sweep") must run sanitizer-clean on both
# engines. Each probe is self-verifying — it compares the distributed
# output against the kernel's serial oracle before reporting — so a
# zero exit here is a differential-correctness check, not just a crash
# check. The kernel probes are deliberately NOT in the baseline suite;
# the cmp gates above already prove BENCH_baseline.json is untouched.
echo "== kernel smoke: scenario corpus oracle-verified on both engines =="
for K in sort bfs stencil wordcount; do
    TSHMEM_SANITIZE=1 go run ./cmd/tshmem-bench -sanitize -probe "$K" > /dev/null
    TSHMEM_SANITIZE=1 go run ./cmd/tshmem-bench -engine event -sanitize \
        -probe "$K" > /dev/null
done
go run ./cmd/tshmem-bench -sweep-kernels > /dev/null

# Fuzz smoke: run each native fuzz target briefly against its committed
# seed corpus plus fresh random inputs. Failures minimize into
# testdata/fuzz/<target>/ — commit the minimized case as a regression
# seed. (A fuzz run only accepts one target per invocation.)
echo "== fuzz smoke: 10s per target =="
go test ./internal/sanitize -run '^$' -fuzz '^FuzzStridedOverlap$' -fuzztime 10s
go test ./internal/alloc -run '^$' -fuzz '^FuzzAlloc$' -fuzztime 10s
go test ./internal/kernels -run '^$' -fuzz '^FuzzSampleSortPartition$' -fuzztime 10s
go test ./internal/kernels -run '^$' -fuzz '^FuzzBFSFrontier$' -fuzztime 10s

# Examples smoke: every example program must build and run to completion
# on a small input. Exit status is the check; output is the user's.
echo "== examples smoke: build + run all examples =="
go run ./examples/quickstart > /dev/null
go run ./examples/heat2d -n 64 -pes 4 -iters 20 > /dev/null
go run ./examples/fft2d -n 64 -pes 4 > /dev/null
go run ./examples/summa -n 64 -g 2 > /dev/null
go run ./examples/cbir -images 200 -pes 4 > /dev/null
go run ./examples/multichip -pes 4 -chips 2 > /dev/null
go run ./examples/kernels -pes 4 -size 200 > /dev/null

echo "ci: OK"
