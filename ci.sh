#!/bin/sh
# Tier-1 gate: every change must pass this before merging.
#
#   ./ci.sh          # vet + race-enabled tests
#   ./ci.sh -short   # skip the slow shape tests (Figure 13/14 case studies)
#
# Pure Go, standard library only — no tools beyond the go toolchain.
set -eu
cd "$(dirname "$0")"

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

# -race slows the case-study shape tests past go test's default 10m
# per-package timeout; -short skips them, the full run needs the headroom.
echo "== go test -race -timeout 45m ./... $* =="
go test -race -timeout 45m "$@" ./...

echo "ci: OK"
