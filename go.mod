module tshmem

go 1.24
