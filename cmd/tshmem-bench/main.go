// Command tshmem-bench regenerates the paper's evaluation: every table and
// figure of "TSHMEM: Shared-Memory Parallel Computing on Tilera Many-Core
// Processors", measured in deterministic virtual time on the simulated
// Tilera substrate.
//
// Usage:
//
//	tshmem-bench                 # run everything at quick application scale
//	tshmem-bench -exp fig10      # run one experiment
//	tshmem-bench -list           # list experiment IDs
//	tshmem-bench -full           # paper-scale case studies (1024x1024 FFT, 22k images)
//	tshmem-bench -stats          # also print substrate counter tables
//	tshmem-bench -probe barrier  # run one observability probe, print counters
//	tshmem-bench -trace out.json # probe + Chrome trace_event JSON (Perfetto)
//	tshmem-bench -probe bcast -heatmap       # per-link mesh utilization map
//	tshmem-bench -probe bcast -svg mesh.svg  # same heatmap as standalone SVG
//	tshmem-bench -faults seed:7              # probe under a seeded fault plan
//	tshmem-bench -faults 'stall:pe=3,q=0'    # probe with one UDN queue stalled
//	tshmem-bench -json out.json              # machine-readable probe baseline
//	tshmem-bench -compare BENCH_baseline.json new.json -threshold 5%
//	tshmem-bench -profile                    # probe + virtual-time blame ledger
//	tshmem-bench -profile -critical-path     # also print the critical path
//	tshmem-bench -profile -folded out.folded # folded stacks (speedscope/inferno)
//	tshmem-bench -profile -pprof out.pb.gz   # pprof protobuf (go tool pprof)
//	tshmem-bench -profile -profile-json p.json        # profile snapshot JSON
//	tshmem-bench -profile-diff a.json b.json          # diff two snapshots
//	tshmem-bench -cpuprofile cpu.pprof       # profile the simulator host cost
//	tshmem-bench -memprofile mem.pprof       # heap profile at exit
//	tshmem-bench -engine event -probe barrier  # probe on the event engine
//	tshmem-bench -engine event -json out.json  # baseline on the event engine
//	tshmem-bench -engine-scaling             # concurrent-run throughput per engine
//	tshmem-bench -sweep-chips                # barrier crossovers across chip families
//	tshmem-bench -probe sort                 # scenario-corpus kernel, oracle-verified
//	tshmem-bench -sweep-kernels              # corpus kernels across chip families
//
// Probes are single-run instrumented microbenchmarks (-probe, listed by
// -list); -trace implies the barrier probe and -heatmap/-svg imply the
// bcast probe when -probe is not given, as do the -profile family of
// flags. The scenario-corpus kernels (sort, bfs, stencil, wordcount;
// tshmem-info -kernels) are also probes: each run re-derives its answer
// and checks it against the kernel's serial oracle before reporting, and
// composes with -sanitize, -faults, -engine, and the -profile family
// like any other probe. They are not members of the -json baseline
// suite, so BENCH_baseline.json is unaffected by the corpus.
// -sweep-kernels runs every kernel across the -sweep-chips chip set and
// prints the verified-makespan table (EXPERIMENTS.md, "Choosing a
// kernel for a sweep"). -engine selects the execution engine for probe and -json suite
// runs (tshmem-info -engines lists them); virtual time is byte-identical
// between engines, so an -engine event baseline diffs exactly against a
// goroutine-engine one. -engine-scaling measures how many concurrent
// simulations the host sustains under each engine (docs/PERFORMANCE.md,
// "Engines"). -compare reruns nothing: it diffs two files written by -json and
// exits non-zero if any watched metric (makespan, p50, p99) regressed past
// -threshold. -profile-diff likewise diffs two files written by
// -profile-json. Virtual time makes the files host-independent, so the
// committed BENCH_baseline.json diffs exactly. See docs/OBSERVABILITY.md
// for the counter taxonomy, heatmap legend, blame-category taxonomy
// (tshmem-info -profile), and JSON schemas.
//
// Flag placement: Go's flag package stops parsing at the first positional
// operand, so flags must come before file operands. The two commands that
// take positional files (-compare baseline.json current.json and
// -profile-diff a.json b.json) hand-parse a trailing -threshold for
// convenience; every other flag placed after an operand is silently
// ignored by the flag package — put flags first.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"tshmem/internal/bench"
	"tshmem/internal/core"
	"tshmem/internal/fault"
	"tshmem/internal/profile"
	"tshmem/internal/sanitize"
	"tshmem/internal/stats"
)

// main delegates to run so deferred profile writers execute on every exit
// path (os.Exit would skip them).
func main() { os.Exit(run()) }

func run() int {
	var (
		exp     = flag.String("exp", "", "experiment ID to run (default: all)")
		list    = flag.Bool("list", false, "list experiment and probe IDs and exit")
		full    = flag.Bool("full", false, "run case studies at full paper scale")
		plot    = flag.Bool("plot", false, "render each experiment as an ASCII chart too")
		stat    = flag.Bool("stats", false, "print aggregate substrate counters next to each result")
		probe   = flag.String("probe", "", "observability probe to run instead of experiments (try -list)")
		trace   = flag.String("trace", "", "write the probe's Chrome trace_event JSON to this file (implies -probe barrier)")
		heatmap = flag.Bool("heatmap", false, "render the probe's per-link mesh utilization as an ASCII heatmap (implies -probe bcast)")
		svgPath = flag.String("svg", "", "write the probe's mesh heatmap as SVG to this file (implies -probe bcast)")
		san     = flag.Bool("sanitize", false, "run under the synchronization sanitizer; exit non-zero on any diagnostic")
		faults  = flag.String("faults", "", "fault plan for the probe: seed:N, a bare seed, or a plan literal like 'stall:pe=3,q=0' (implies -probe barrier; see docs/ROBUSTNESS.md)")
		jsonOut = flag.String("json", "", "run the probe suite and write a machine-readable baseline to this file")
		compare = flag.String("compare", "", "baseline JSON to compare against; pass the current run's JSON as the positional argument")
		thresh  = flag.String("threshold", "5%", "relative regression threshold for -compare (e.g. 5% or 0.05)")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		barAlgo = flag.String("barrier-algo", "", "barrier algorithm for the probe: linear, tmc-spin, counter, dissemination, tournament, mcs-tree (default: legacy dispatch; see docs/SYNC.md)")
		lkAlgo  = flag.String("lock-algo", "", "lock algorithm for the probe: cas, ticket, mcs (default cas; see docs/SYNC.md)")
		sweep   = flag.Bool("sweep-algos", false, "sweep every barrier/lock algorithm across PE counts on both chips and print the crossover tables (docs/SYNC.md)")
		sweepC  = flag.Bool("sweep-chips", false, "sweep barrier algorithms across chip families (Tilera and Epiphany) at matching PE counts and print where the crossovers move (docs/ARCHITECTURES.md)")
		sweepK  = flag.Bool("sweep-kernels", false, "run every scenario-corpus kernel across the chip families and print the oracle-verified makespan table (see EXPERIMENTS.md)")
		profOn  = flag.Bool("profile", false, "run the probe under the causal profiler and print the per-PE blame ledger (implies -probe barrier)")
		crit    = flag.Bool("critical-path", false, "also print the probe's virtual-time critical path (implies -profile)")
		folded  = flag.String("folded", "", "write the probe's blame ledger as folded stacks to this file (speedscope/inferno; implies -profile)")
		ppOut   = flag.String("pprof", "", "write the probe's blame ledger as a pprof protobuf to this file (go tool pprof; implies -profile)")
		pjOut   = flag.String("profile-json", "", "write the probe's profile snapshot JSON to this file, for -profile-diff (implies -profile)")
		pdiff   = flag.String("profile-diff", "", "baseline profile JSON to diff against; pass the current run's JSON as the positional argument")
		engName = flag.String("engine", "", "execution engine for probe and -json suite runs: goroutine, event (default goroutine; see tshmem-info -engines)")
		engScal = flag.Bool("engine-scaling", false, "measure concurrent-run throughput per engine and print the scaling table (docs/PERFORMANCE.md)")
	)
	flag.Parse()

	engine, err := core.ParseEngine(*engName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tshmem-bench: %v\n", err)
		return 2
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tshmem-bench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "tshmem-bench: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tshmem-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "tshmem-bench: %v\n", err)
			}
		}()
	}

	if *list {
		for _, r := range bench.Runners() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		for _, p := range bench.Probes() {
			fmt.Printf("%-8s probe: %s\n", p.ID, p.Title)
		}
		return 0
	}
	if *compare != "" {
		code, err := runCompare(*compare, flag.Args(), *thresh)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tshmem-bench: %v\n", err)
			return 1
		}
		return code
	}
	if *pdiff != "" {
		if err := runProfileDiff(*pdiff, flag.Args()); err != nil {
			fmt.Fprintf(os.Stderr, "tshmem-bench: %v\n", err)
			return 1
		}
		return 0
	}
	if *jsonOut != "" {
		if err := writeBaseline(*jsonOut, engine); err != nil {
			fmt.Fprintf(os.Stderr, "tshmem-bench: %v\n", err)
			return 1
		}
		return 0
	}
	if *engScal {
		start := time.Now()
		pts, err := bench.EngineScalingSweep(2)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tshmem-bench: %v\n", err)
			return 1
		}
		fmt.Print(bench.FormatEngineScaling(pts))
		fmt.Printf("(measured in %.1fs wall time; host wall-clock, unlike every virtual-time table)\n",
			time.Since(start).Seconds())
		return 0
	}
	if *sweep {
		start := time.Now()
		out, err := bench.SweepAlgos(bench.Options{Quick: !*full, Sanitize: *san})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tshmem-bench: %v\n", err)
			return 1
		}
		fmt.Print(out)
		fmt.Printf("(regenerated in %.1fs wall time)\n", time.Since(start).Seconds())
		return 0
	}
	if *sweepC {
		start := time.Now()
		out, err := bench.SweepChips(bench.Options{Quick: !*full, Sanitize: *san})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tshmem-bench: %v\n", err)
			return 1
		}
		fmt.Print(out)
		fmt.Printf("(regenerated in %.1fs wall time)\n", time.Since(start).Seconds())
		return 0
	}
	if *sweepK {
		start := time.Now()
		out, err := bench.SweepKernels(bench.Options{Quick: !*full, Sanitize: *san})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tshmem-bench: %v\n", err)
			return 1
		}
		fmt.Print(out)
		fmt.Printf("(regenerated in %.1fs wall time)\n", time.Since(start).Seconds())
		return 0
	}
	prof := profileFlags{
		on:     *profOn || *crit || *folded != "" || *ppOut != "" || *pjOut != "",
		crit:   *crit,
		folded: *folded, pprof: *ppOut, json: *pjOut,
	}
	if (*trace != "" || *faults != "" || *barAlgo != "" || *lkAlgo != "" || prof.on) && *probe == "" {
		*probe = "barrier"
	}
	if (*heatmap || *svgPath != "") && *probe == "" {
		*probe = "bcast"
	}
	if *probe != "" {
		if err := runProbe(*probe, *trace, *heatmap, *svgPath, *san, *faults, *barAlgo, *lkAlgo, engine, prof); err != nil {
			fmt.Fprintf(os.Stderr, "tshmem-bench: %v\n", err)
			return 1
		}
		return 0
	}

	opt := bench.Options{Quick: !*full, Sanitize: *san}
	runners := bench.Runners()
	if *exp != "" {
		r, ok := bench.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "tshmem-bench: unknown experiment %q (try -list)\n", *exp)
			return 2
		}
		runners = []bench.Runner{r}
	}
	for _, r := range runners {
		if *stat {
			opt.Obs = new(stats.Collector)
		}
		start := time.Now()
		e, err := r.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tshmem-bench: %s: %v\n", r.ID, err)
			return 1
		}
		fmt.Print(e.Format())
		if *plot {
			fmt.Print(e.Plot(72, 18))
		}
		if *stat {
			fmt.Print(opt.Obs.Table())
			_, agg := opt.Obs.Snapshot()
			fmt.Print(agg.HistTable())
		}
		fmt.Printf("(regenerated in %.1fs wall time)\n\n", time.Since(start).Seconds())
	}
	return 0
}

// profileFlags bundles the causal-profiler outputs requested on the
// command line.
type profileFlags struct {
	on     bool
	crit   bool
	folded string
	pprof  string
	json   string
}

// warnExportDrops prints the truncation warnings relevant to an export:
// dropped trace events mean the named artifact was derived from an
// incomplete event stream, dropped profile segments mean the critical
// path may be missing edges (the blame ledger itself is always exact).
func warnExportDrops(rep *core.Report, what string) {
	if n := rep.DroppedEvents(); n > 0 {
		fmt.Printf("WARNING: %s: %d trace events dropped at the per-PE cap; counters remain exact\n", what, n)
	}
	if p := rep.Profile(); p != nil && p.DroppedSegs > 0 {
		fmt.Printf("WARNING: %s: %d profile segments dropped at the per-PE cap; ledger remains exact, critical path may skip edges\n", what, p.DroppedSegs)
	}
}

// runProbe runs one observability probe, prints its counter and latency
// tables, and optionally exports the event trace, mesh heatmap, and
// causal profile. With a fault spec the probe runs under the injected
// plan: bounded waits that expire are reported as timeout diagnostics
// rather than failing the run.
func runProbe(id, tracePath string, heatmap bool, svgPath string, sanOn bool, faultSpec, barAlgo, lkAlgo string, engine core.Engine, prof profileFlags) error {
	p, ok := bench.LookupProbe(id)
	if !ok {
		return fmt.Errorf("unknown probe %q; valid probes: %s",
			id, strings.Join(bench.ProbeIDs(), ", "))
	}
	var plan *fault.Plan
	if faultSpec != "" {
		var err error
		if plan, err = fault.Parse(faultSpec); err != nil {
			return err
		}
	}
	ba, err := core.ParseBarrierAlgo(barAlgo)
	if err != nil {
		return err
	}
	la, err := core.ParseLockAlgo(lkAlgo)
	if err != nil {
		return err
	}
	start := time.Now()
	rep, err := p.Run(bench.ProbeOpts{
		Trace: tracePath != "", Sanitize: sanOn, Profile: prof.on, Faults: plan,
		BarrierAlgo: ba, LockAlgo: la, Engine: engine,
	})
	if err != nil {
		// Under fault injection a timed-out wait is the expected outcome
		// being demonstrated: report it and keep going with the Report.
		if rep == nil || !errors.Is(err, core.ErrTimeout) {
			return fmt.Errorf("probe %s: %w", id, err)
		}
		fmt.Printf("fault injection: %v\n", err)
	}
	if plan != nil {
		fmt.Printf("fault plan: %s\n", rep.FaultPlan)
		for i, n := range rep.FaultCounts {
			if n > 0 {
				fmt.Printf("fault event %d (%s): triggered %d time(s)\n", i, rep.FaultPlan.Events[i], n)
			}
		}
		for _, d := range rep.Diagnostics {
			if d.Kind == sanitize.Timeout {
				fmt.Printf("diagnostic: %s\n", d)
			}
		}
	}
	if sanOn {
		// Timeout diagnostics are fault-injection outcomes (printed above),
		// not synchronization defects; only the latter fail a -sanitize run.
		defects := 0
		for _, d := range rep.Diagnostics {
			if d.Kind != sanitize.Timeout {
				fmt.Fprintf(os.Stderr, "sanitizer: %s\n", d)
				defects++
			}
		}
		if defects > 0 {
			return fmt.Errorf("probe %s: sanitizer found %d synchronization issue(s)", id, defects)
		}
		fmt.Printf("sanitizer: clean (0 diagnostics)\n")
	}
	fmt.Printf("== probe %s: %s ==\n", p.ID, p.Title)
	fmt.Printf("virtual makespan: %.3f us over %d PEs\n", rep.MaxTime.Us(), len(rep.PECounters))
	agg := rep.Stats()
	fmt.Print(agg.Table())
	fmt.Print(agg.HistTable())
	if heatmap {
		for _, u := range rep.MeshUtil {
			fmt.Print(u.ASCII())
		}
	}
	if svgPath != "" {
		if len(rep.MeshUtil) == 0 {
			return fmt.Errorf("probe %s recorded no mesh utilization", id)
		}
		if err := os.WriteFile(svgPath, []byte(rep.MeshUtil[0].SVG()), 0o644); err != nil {
			return err
		}
		fmt.Printf("heatmap: chip 0 -> %s\n", svgPath)
	}
	if dropped := rep.DroppedEvents(); dropped > 0 {
		fmt.Printf("WARNING: trace truncated: %d events dropped at the per-PE cap; counters remain exact\n", dropped)
	}
	if tracePath != "" {
		warnExportDrops(rep, "trace export")
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rep.TraceTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events -> %s (open at https://ui.perfetto.dev)\n",
			len(rep.Trace()), tracePath)
	}
	if prof.on {
		pr := rep.Profile()
		if pr == nil {
			return fmt.Errorf("probe %s: profiling requested but the report carries no profile", id)
		}
		fmt.Print(pr.BlameTable())
		if prof.crit {
			fmt.Print(pr.PathTable())
		}
		if prof.folded != "" {
			warnExportDrops(rep, "folded export")
			if err := writeTo(prof.folded, pr.WriteFolded); err != nil {
				return err
			}
			fmt.Printf("folded stacks -> %s (open at https://www.speedscope.app)\n", prof.folded)
		}
		if prof.pprof != "" {
			warnExportDrops(rep, "pprof export")
			if err := writeTo(prof.pprof, pr.WritePprof); err != nil {
				return err
			}
			fmt.Printf("pprof profile -> %s (go tool pprof -top %s)\n", prof.pprof, prof.pprof)
		}
		if prof.json != "" {
			warnExportDrops(rep, "profile-json export")
			if err := writeTo(prof.json, pr.WriteJSON); err != nil {
				return err
			}
			fmt.Printf("profile snapshot -> %s (diff with -profile-diff)\n", prof.json)
		}
	}
	fmt.Printf("(regenerated in %.1fs wall time)\n", time.Since(start).Seconds())
	return nil
}

// writeTo creates path and streams write into it, closing on all paths.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runProfileDiff diffs two profile snapshots written by -profile-json.
// Like -compare, the second file arrives as a positional operand (the
// flag package stops parsing at the first positional argument).
func runProfileDiff(basePath string, args []string) error {
	var curPath string
	for _, a := range args {
		if curPath != "" {
			return fmt.Errorf("unexpected argument %q (usage: -profile-diff base.json current.json)", a)
		}
		curPath = a
	}
	if curPath == "" {
		return fmt.Errorf("usage: -profile-diff base.json current.json")
	}
	base, err := profile.ReadJSON(basePath)
	if err != nil {
		return err
	}
	cur, err := profile.ReadJSON(curPath)
	if err != nil {
		return err
	}
	fmt.Print(profile.Diff(base, cur))
	return nil
}

// writeBaseline runs the probe suite and writes the machine-readable
// baseline JSON (the format committed as BENCH_baseline.json). The
// baseline is engine-independent: virtual time is byte-identical between
// engines, so -engine event writes the same file.
func writeBaseline(path string, engine core.Engine) error {
	start := time.Now()
	b, err := bench.RunSuite(bench.ProbeOpts{Engine: engine})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteBaseline(f, b); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("baseline: %d probes -> %s (%.1fs wall time)\n",
		len(b.Results), path, time.Since(start).Seconds())
	return nil
}

// runCompare diffs two baseline files, returning exit code 3 on
// regression. The flag package stops parsing at the first positional
// argument, so a trailing "-threshold 5%" after the file is picked up
// here by hand.
func runCompare(basePath string, args []string, thresh string) (int, error) {
	var curPath string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-threshold" || a == "--threshold":
			if i+1 >= len(args) {
				return 0, fmt.Errorf("-threshold needs a value (e.g. 5%%)")
			}
			i++
			thresh = args[i]
		case strings.HasPrefix(a, "-threshold=") || strings.HasPrefix(a, "--threshold="):
			thresh = a[strings.Index(a, "=")+1:]
		case curPath == "":
			curPath = a
		default:
			return 0, fmt.Errorf("unexpected argument %q (usage: -compare baseline.json current.json [-threshold 5%%])", a)
		}
	}
	if curPath == "" {
		return 0, fmt.Errorf("usage: -compare baseline.json current.json [-threshold 5%%]")
	}
	t, err := bench.ParseThreshold(thresh)
	if err != nil {
		return 0, err
	}
	base, err := bench.ReadBaseline(basePath)
	if err != nil {
		return 0, err
	}
	cur, err := bench.ReadBaseline(curPath)
	if err != nil {
		return 0, err
	}
	deltas := bench.Compare(base, cur, t)
	fmt.Print(bench.FormatCompare(deltas, t))
	if bench.Regressed(deltas) {
		return 3, nil
	}
	return 0, nil
}
