// Command tshmem-bench regenerates the paper's evaluation: every table and
// figure of "TSHMEM: Shared-Memory Parallel Computing on Tilera Many-Core
// Processors", measured in deterministic virtual time on the simulated
// Tilera substrate.
//
// Usage:
//
//	tshmem-bench                 # run everything at quick application scale
//	tshmem-bench -exp fig10      # run one experiment
//	tshmem-bench -list           # list experiment IDs
//	tshmem-bench -full           # paper-scale case studies (1024x1024 FFT, 22k images)
//	tshmem-bench -stats          # also print substrate counter tables
//	tshmem-bench -probe barrier  # run one observability probe, print counters
//	tshmem-bench -trace out.json # probe + Chrome trace_event JSON (Perfetto)
//
// Probes are single-run instrumented microbenchmarks (-probe, listed by
// -list); -trace implies the barrier probe when -probe is not given. See
// docs/OBSERVABILITY.md for the counter taxonomy and a worked example.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tshmem/internal/bench"
	"tshmem/internal/stats"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment ID to run (default: all)")
		list  = flag.Bool("list", false, "list experiment and probe IDs and exit")
		full  = flag.Bool("full", false, "run case studies at full paper scale")
		plot  = flag.Bool("plot", false, "render each experiment as an ASCII chart too")
		stat  = flag.Bool("stats", false, "print aggregate substrate counters next to each result")
		probe = flag.String("probe", "", "observability probe to run instead of experiments (try -list)")
		trace = flag.String("trace", "", "write the probe's Chrome trace_event JSON to this file (implies -probe barrier)")
	)
	flag.Parse()

	if *list {
		for _, r := range bench.Runners() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		for _, p := range bench.Probes() {
			fmt.Printf("%-8s probe: %s\n", p.ID, p.Title)
		}
		return
	}
	if *trace != "" && *probe == "" {
		*probe = "barrier"
	}
	if *probe != "" {
		if err := runProbe(*probe, *trace); err != nil {
			fmt.Fprintf(os.Stderr, "tshmem-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opt := bench.Options{Quick: !*full}
	runners := bench.Runners()
	if *exp != "" {
		r, ok := bench.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "tshmem-bench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		runners = []bench.Runner{r}
	}
	for _, r := range runners {
		if *stat {
			opt.Obs = new(stats.Collector)
		}
		start := time.Now()
		e, err := r.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tshmem-bench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Print(e.Format())
		if *plot {
			fmt.Print(e.Plot(72, 18))
		}
		if *stat {
			fmt.Print(opt.Obs.Table())
		}
		fmt.Printf("(regenerated in %.1fs wall time)\n\n", time.Since(start).Seconds())
	}
}

// runProbe runs one observability probe, prints its counter table, and
// optionally exports the virtual-time event trace.
func runProbe(id, tracePath string) error {
	p, ok := bench.LookupProbe(id)
	if !ok {
		return fmt.Errorf("unknown probe %q (try -list)", id)
	}
	start := time.Now()
	rep, err := p.Run(tracePath != "")
	if err != nil {
		return fmt.Errorf("probe %s: %w", id, err)
	}
	fmt.Printf("== probe %s: %s ==\n", p.ID, p.Title)
	fmt.Printf("virtual makespan: %.3f us over %d PEs\n", rep.MaxTime.Us(), len(rep.PECounters))
	agg := rep.Stats()
	fmt.Print(agg.Table())
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rep.TraceTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events -> %s (open at https://ui.perfetto.dev)\n",
			len(rep.Trace()), tracePath)
	}
	fmt.Printf("(regenerated in %.1fs wall time)\n", time.Since(start).Seconds())
	return nil
}
