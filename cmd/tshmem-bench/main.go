// Command tshmem-bench regenerates the paper's evaluation: every table and
// figure of "TSHMEM: Shared-Memory Parallel Computing on Tilera Many-Core
// Processors", measured in deterministic virtual time on the simulated
// Tilera substrate.
//
// Usage:
//
//	tshmem-bench                 # run everything at quick application scale
//	tshmem-bench -exp fig10      # run one experiment
//	tshmem-bench -list           # list experiment IDs
//	tshmem-bench -full           # paper-scale case studies (1024x1024 FFT, 22k images)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tshmem/internal/bench"
)

func main() {
	var (
		exp  = flag.String("exp", "", "experiment ID to run (default: all)")
		list = flag.Bool("list", false, "list experiment IDs and exit")
		full = flag.Bool("full", false, "run case studies at full paper scale")
		plot = flag.Bool("plot", false, "render each experiment as an ASCII chart too")
	)
	flag.Parse()

	if *list {
		for _, r := range bench.Runners() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}
	opt := bench.Options{Quick: !*full}

	runners := bench.Runners()
	if *exp != "" {
		r, ok := bench.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "tshmem-bench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		runners = []bench.Runner{r}
	}
	for _, r := range runners {
		start := time.Now()
		e, err := r.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tshmem-bench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Print(e.Format())
		if *plot {
			fmt.Print(e.Plot(72, 18))
		}
		fmt.Printf("(regenerated in %.1fs wall time)\n\n", time.Since(start).Seconds())
	}
}
