// Command tshmem-info prints the modeled Tilera processor catalogue,
// including the paper's Table II architecture comparison, the substrate
// observability counter taxonomy (-counters), and the fault-injection
// kind taxonomy (-faults).
package main

import (
	"flag"
	"fmt"

	"tshmem/internal/arch"
	"tshmem/internal/fault"
	"tshmem/internal/stats"
)

func main() {
	var chips = flag.String("chips", "TILE-Gx8036,TILEPro64", "comma-separated chip names (see -all)")
	var all = flag.Bool("all", false, "print every modeled chip")
	var counters = flag.Bool("counters", false, "print the observability counter taxonomy and exit")
	var faults = flag.Bool("faults", false, "print the fault-injection kind taxonomy and exit")
	flag.Parse()

	if *counters {
		fmt.Print(stats.Taxonomy())
		return
	}
	if *faults {
		fmt.Print(fault.Taxonomy())
		return
	}

	var list []*arch.Chip
	if *all {
		list = arch.Chips()
	} else {
		name := ""
		for _, c := range *chips + "," {
			if c == ',' {
				if chip := arch.ByName(name); chip != nil {
					list = append(list, chip)
				} else if name != "" {
					fmt.Printf("unknown chip %q; known chips:\n", name)
					for _, k := range arch.Chips() {
						fmt.Println(" ", k.Name)
					}
					return
				}
				name = ""
				continue
			}
			name += string(c)
		}
	}
	fmt.Print(arch.FormatTableII(list...))
}
