// Command tshmem-info prints the modeled Tilera processor catalogue,
// including the paper's Table II architecture comparison, the substrate
// observability counter taxonomy (-counters), the fault-injection kind
// taxonomy (-faults), the causal profiler's blame-category taxonomy
// (-profile), and the execution engine catalogue (-engines). Flags must
// precede any operands: Go's flag package stops parsing at the first
// positional argument.
package main

import (
	"flag"
	"fmt"

	"tshmem/internal/arch"
	"tshmem/internal/core"
	"tshmem/internal/fault"
	"tshmem/internal/profile"
	"tshmem/internal/stats"
)

func main() {
	var chips = flag.String("chips", "TILE-Gx8036,TILEPro64", "comma-separated chip names (see -all)")
	var all = flag.Bool("all", false, "print every modeled chip")
	var counters = flag.Bool("counters", false, "print the observability counter taxonomy and exit")
	var faults = flag.Bool("faults", false, "print the fault-injection kind taxonomy and exit")
	var prof = flag.Bool("profile", false, "print the causal profiler's blame-category taxonomy and exit")
	var engines = flag.Bool("engines", false, "print the execution engine catalogue and exit")
	flag.Parse()

	if *engines {
		fmt.Println("execution engines (core.Config.Engine; tshmem-bench -engine):")
		for _, e := range core.Engines() {
			var desc string
			switch e {
			case core.EngineGoroutine:
				desc = "one free-running host goroutine per PE (default)"
			case core.EngineEvent:
				desc = "virtual-time calendar: one runnable goroutine per run,\n" +
					"              admission-gated launches, recycled arenas"
			}
			fmt.Printf("  %-10s  %s\n", e, desc)
		}
		fmt.Println("Reports are byte-identical between engines; see docs/PERFORMANCE.md\n" +
			"(\"Engines\") for the scheduling model and the determinism argument.")
		return
	}

	if *counters {
		fmt.Print(stats.Taxonomy())
		return
	}
	if *faults {
		fmt.Print(fault.Taxonomy())
		return
	}
	if *prof {
		fmt.Println("blame categories (per-PE virtual-time ledger; tshmem-bench -profile):")
		for _, e := range profile.Taxonomy() {
			fmt.Printf("  %-12s %s\n", e.Name, e.Desc)
		}
		fmt.Println("Each PE's categories sum exactly to its virtual end time; 'compute'\n" +
			"is the residual no wait or transport explains. See docs/OBSERVABILITY.md.")
		return
	}

	var list []*arch.Chip
	if *all {
		list = arch.Chips()
	} else {
		name := ""
		for _, c := range *chips + "," {
			if c == ',' {
				if chip := arch.ByName(name); chip != nil {
					list = append(list, chip)
				} else if name != "" {
					fmt.Printf("unknown chip %q; known chips:\n", name)
					for _, k := range arch.Chips() {
						fmt.Println(" ", k.Name)
					}
					return
				}
				name = ""
				continue
			}
			name += string(c)
		}
	}
	fmt.Print(arch.FormatTableII(list...))
}
