// Command tshmem-info prints the modeled processor catalogue (the Tilera
// and Epiphany families plus synthetic-WxH grids), including the paper's
// Table II architecture comparison, the substrate observability counter
// taxonomy (-counters), the fault-injection kind taxonomy (-faults), the
// causal profiler's blame-category taxonomy (-profile), the execution
// engine catalogue (-engines), and the scenario-corpus workload menu
// (-kernels). Flags must precede any operands: Go's flag package stops
// parsing at the first positional argument.
package main

import (
	"flag"
	"fmt"
	"strings"

	"tshmem/internal/arch"
	"tshmem/internal/core"
	"tshmem/internal/fault"
	"tshmem/internal/kernels"
	"tshmem/internal/profile"
	"tshmem/internal/stats"
)

// selectChips resolves a -chips spec against the registry: an empty spec
// selects every registered chip (the registry is the source of truth, so
// newly modeled chips appear without touching this command), otherwise
// each comma-separated name is looked up via arch.ByName, which also
// parses synthetic-WxH grids.
func selectChips(spec string) ([]*arch.Chip, error) {
	if spec == "" {
		return arch.Chips(), nil
	}
	var list []*arch.Chip
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		chip := arch.ByName(name)
		if chip == nil {
			var known []string
			for _, k := range arch.Chips() {
				known = append(known, k.Name)
			}
			return nil, fmt.Errorf("unknown chip %q; known chips: %s (or synthetic-WxH)",
				name, strings.Join(known, ", "))
		}
		list = append(list, chip)
	}
	return list, nil
}

func main() {
	var chips = flag.String("chips", "", "comma-separated chip names (default: every modeled chip)")
	var all = flag.Bool("all", false, "print every modeled chip (same as an empty -chips)")
	var counters = flag.Bool("counters", false, "print the observability counter taxonomy and exit")
	var faults = flag.Bool("faults", false, "print the fault-injection kind taxonomy and exit")
	var prof = flag.Bool("profile", false, "print the causal profiler's blame-category taxonomy and exit")
	var engines = flag.Bool("engines", false, "print the execution engine catalogue and exit")
	var kern = flag.Bool("kernels", false, "print the scenario-corpus workload menu and exit")
	flag.Parse()

	if *kern {
		fmt.Println("scenario-corpus kernels (internal/kernels; tshmem-bench -probe <id>):")
		for _, k := range kernels.Kernels() {
			fmt.Printf("  %-10s  %s\n", k.Name(), k.Title())
		}
		fmt.Println("Each kernel carries a serial reference oracle; every probe and sweep\n" +
			"run is verified against it before a makespan is reported. The IDs are\n" +
			"also valid for tshmem-bench -sweep-kernels rows and examples/kernels\n" +
			"-kernel. See EXPERIMENTS.md (\"Choosing a kernel for a sweep\").")
		return
	}

	if *engines {
		fmt.Println("execution engines (core.Config.Engine; tshmem-bench -engine):")
		for _, e := range core.Engines() {
			var desc string
			switch e {
			case core.EngineGoroutine:
				desc = "one free-running host goroutine per PE (default)"
			case core.EngineEvent:
				desc = "virtual-time calendar: one runnable goroutine per run,\n" +
					"              admission-gated launches, recycled arenas"
			}
			fmt.Printf("  %-10s  %s\n", e, desc)
		}
		fmt.Println("Reports are byte-identical between engines; see docs/PERFORMANCE.md\n" +
			"(\"Engines\") for the scheduling model and the determinism argument.")
		return
	}

	if *counters {
		fmt.Print(stats.Taxonomy())
		return
	}
	if *faults {
		fmt.Print(fault.Taxonomy())
		return
	}
	if *prof {
		fmt.Println("blame categories (per-PE virtual-time ledger; tshmem-bench -profile):")
		for _, e := range profile.Taxonomy() {
			fmt.Printf("  %-12s %s\n", e.Name, e.Desc)
		}
		fmt.Println("Each PE's categories sum exactly to its virtual end time; 'compute'\n" +
			"is the residual no wait or transport explains. See docs/OBSERVABILITY.md.")
		return
	}

	spec := *chips
	if *all {
		spec = ""
	}
	list, err := selectChips(spec)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(arch.FormatTableII(list...))
}
