// Command tshmem-info prints the modeled Tilera processor catalogue,
// including the paper's Table II architecture comparison, the substrate
// observability counter taxonomy (-counters), the fault-injection kind
// taxonomy (-faults), and the causal profiler's blame-category taxonomy
// (-profile). Flags must precede any operands: Go's flag package stops
// parsing at the first positional argument.
package main

import (
	"flag"
	"fmt"

	"tshmem/internal/arch"
	"tshmem/internal/fault"
	"tshmem/internal/profile"
	"tshmem/internal/stats"
)

func main() {
	var chips = flag.String("chips", "TILE-Gx8036,TILEPro64", "comma-separated chip names (see -all)")
	var all = flag.Bool("all", false, "print every modeled chip")
	var counters = flag.Bool("counters", false, "print the observability counter taxonomy and exit")
	var faults = flag.Bool("faults", false, "print the fault-injection kind taxonomy and exit")
	var prof = flag.Bool("profile", false, "print the causal profiler's blame-category taxonomy and exit")
	flag.Parse()

	if *counters {
		fmt.Print(stats.Taxonomy())
		return
	}
	if *faults {
		fmt.Print(fault.Taxonomy())
		return
	}
	if *prof {
		fmt.Println("blame categories (per-PE virtual-time ledger; tshmem-bench -profile):")
		for _, e := range profile.Taxonomy() {
			fmt.Printf("  %-12s %s\n", e.Name, e.Desc)
		}
		fmt.Println("Each PE's categories sum exactly to its virtual end time; 'compute'\n" +
			"is the residual no wait or transport explains. See docs/OBSERVABILITY.md.")
		return
	}

	var list []*arch.Chip
	if *all {
		list = arch.Chips()
	} else {
		name := ""
		for _, c := range *chips + "," {
			if c == ',' {
				if chip := arch.ByName(name); chip != nil {
					list = append(list, chip)
				} else if name != "" {
					fmt.Printf("unknown chip %q; known chips:\n", name)
					for _, k := range arch.Chips() {
						fmt.Println(" ", k.Name)
					}
					return
				}
				name = ""
				continue
			}
			name += string(c)
		}
	}
	fmt.Print(arch.FormatTableII(list...))
}
