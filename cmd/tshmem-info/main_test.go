package main

import (
	"strings"
	"testing"

	"tshmem/internal/arch"
)

// TestDefaultSelectsWholeRegistry guards the registry-enumeration fix: an
// earlier revision hardcoded the two Tilera chip names as the default, so
// newly modeled chips (the Epiphany family) were silently absent from the
// default table. The default must track arch.Chips() exactly.
func TestDefaultSelectsWholeRegistry(t *testing.T) {
	list, err := selectChips("")
	if err != nil {
		t.Fatalf("selectChips(\"\"): %v", err)
	}
	reg := arch.Chips()
	if len(list) != len(reg) {
		t.Fatalf("default selects %d chips, registry has %d", len(list), len(reg))
	}
	for i, c := range reg {
		if list[i].Name != c.Name {
			t.Errorf("default chip %d: got %s, want %s", i, list[i].Name, c.Name)
		}
	}
	// Every registered chip must render in the default Table II output.
	table := arch.FormatTableII(list...)
	for _, c := range reg {
		if !strings.Contains(table, c.Name) {
			t.Errorf("default table is missing registered chip %s", c.Name)
		}
	}
}

func TestSelectChips(t *testing.T) {
	list, err := selectChips("TILEPro64, Epiphany-III")
	if err != nil {
		t.Fatalf("selectChips: %v", err)
	}
	if len(list) != 2 || list[0].Name != "TILEPro64" || list[1].Name != "Epiphany-III" {
		t.Fatalf("selectChips picked %v", list)
	}

	list, err = selectChips("synthetic-5x3")
	if err != nil {
		t.Fatalf("selectChips(synthetic-5x3): %v", err)
	}
	if len(list) != 1 || list[0].Tiles != 15 {
		t.Fatalf("synthetic-5x3 resolved to %v", list)
	}

	if _, err = selectChips("no-such-chip"); err == nil {
		t.Fatal("unknown chip did not error")
	} else {
		// The error must name every registered chip so the user can fix
		// the spec without consulting the docs.
		for _, c := range arch.Chips() {
			if !strings.Contains(err.Error(), c.Name) {
				t.Errorf("unknown-chip error does not mention %s: %v", c.Name, err)
			}
		}
	}
}
