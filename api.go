package tshmem

import "tshmem/internal/core"

// Symmetric memory management (shmalloc family; all collective calls).

// Malloc allocates a dynamic symmetric object of n elements of T
// (shmalloc).
func Malloc[T Elem](pe *PE, n int) (Ref[T], error) { return core.Malloc[T](pe, n) }

// MallocAlign is shmemalign: Malloc at a power-of-two byte alignment.
func MallocAlign[T Elem](pe *PE, n int, align int64) (Ref[T], error) {
	return core.MallocAlign[T](pe, n, align)
}

// Free releases a dynamic symmetric object (shfree).
func Free[T Elem](pe *PE, r Ref[T]) error { return core.Free(pe, r) }

// Realloc resizes a dynamic symmetric object (shrealloc).
func Realloc[T Elem](pe *PE, r Ref[T], n int) (Ref[T], error) { return core.Realloc(pe, r, n) }

// DeclareStatic declares a static symmetric object: n elements of T in each
// PE's private memory, remotely reachable only through UDN-interrupt
// redirection (TILE-Gx only).
func DeclareStatic[T Elem](pe *PE, name string, n int) (Ref[T], error) {
	return core.DeclareStatic[T](pe, name, n)
}

// Local returns the calling PE's own instance of a symmetric object.
func Local[T Elem](pe *PE, r Ref[T]) ([]T, error) { return core.Local(pe, r) }

// MustLocal is Local for known-good references; it panics on error.
func MustLocal[T Elem](pe *PE, r Ref[T]) []T { return core.MustLocal(pe, r) }

// One-sided data transfers.

// Put copies nelems elements of the local source into target on PE tpe
// (shmem_putmem / typed block puts). Non-blocking semantics: remote
// visibility is guaranteed by Quiet, Fence, or a barrier.
//
// Caveat: the simulator performs the copy eagerly at issue time, so a
// program that omits the Quiet/Fence/barrier still computes the right
// answer here — and would corrupt data on real Tilera hardware, where the
// put may still be in flight. Enable Config.Sanitize (or set
// TSHMEM_SANITIZE=1) to have such programs flagged through
// Report.Diagnostics instead of silently passing.
func Put[T Elem](pe *PE, target, source Ref[T], nelems, tpe int) error {
	return core.Put(pe, target, source, nelems, tpe)
}

// PutSlice is Put with a private local Go slice as the source.
func PutSlice[T Elem](pe *PE, target Ref[T], source []T, tpe int) error {
	return core.PutSlice(pe, target, source, tpe)
}

// Get copies nelems elements of source on PE spe into the local target
// (shmem_getmem / typed block gets). Blocking.
func Get[T Elem](pe *PE, target, source Ref[T], nelems, spe int) error {
	return core.Get(pe, target, source, nelems, spe)
}

// GetSlice is Get with a private local Go slice as the target.
func GetSlice[T Elem](pe *PE, target []T, source Ref[T], spe int) error {
	return core.GetSlice(pe, target, source, spe)
}

// P is the elemental put (shmem_TYPE_p): one value into element 0 of target
// on PE tpe.
func P[T Elem](pe *PE, target Ref[T], value T, tpe int) error {
	return core.P(pe, target, value, tpe)
}

// G is the elemental get (shmem_TYPE_g).
func G[T Elem](pe *PE, source Ref[T], spe int) (T, error) { return core.G(pe, source, spe) }

// IPut is the strided put (shmem_TYPE_iput); strides are in elements.
func IPut[T Elem](pe *PE, target, source Ref[T], tst, sst int64, nelems, tpe int) error {
	return core.IPut(pe, target, source, tst, sst, nelems, tpe)
}

// IGet is the strided get (shmem_TYPE_iget).
func IGet[T Elem](pe *PE, target, source Ref[T], tst, sst int64, nelems, spe int) error {
	return core.IGet(pe, target, source, tst, sst, nelems, spe)
}

// Point-to-point synchronization.
//
// Barriers (PE.Barrier/PE.BarrierAll) and distributed locks (PE.SetLock/
// PE.ClearLock/PE.TestLock) are PE methods; the algorithm behind them is
// chosen per launch by Config.BarrierAlgo and Config.LockAlgo
// (docs/SYNC.md). Both zero values reproduce the paper's behavior
// exactly: BarrierAlgoDefault dispatches BarrierAll through
// Config.Barrier (the linear UDN chain unless TMCSpinBarrier is set) and
// subset barriers through the chain, and LockAlgoCAS is the
// compare-and-swap spin lock — so existing programs and recorded
// baselines are unaffected unless an algorithm is selected explicitly.

// WaitUntil blocks until the local instance of ivar satisfies cmp against
// value (shmem_wait_until).
func WaitUntil[T Integer](pe *PE, ivar Ref[T], cmp Cmp, value T) error {
	return core.WaitUntil(pe, ivar, cmp, value)
}

// Wait blocks until ivar changes from value (shmem_wait).
func Wait[T Integer](pe *PE, ivar Ref[T], value T) error { return core.Wait(pe, ivar, value) }

// Collective communication.

// Broadcast copies nelems elements from the root (a zero-based ordinal in
// the active set) to every other member (shmem_broadcast32/64), using the
// configured algorithm.
func Broadcast[T Elem](pe *PE, target, source Ref[T], nelems, root int, as ActiveSet, ps PSync) error {
	return core.Broadcast(pe, target, source, nelems, root, as, ps)
}

// BroadcastPull is the paper's scalable pull-based broadcast (Figure 10).
func BroadcastPull[T Elem](pe *PE, target, source Ref[T], nelems, root int, as ActiveSet, ps PSync) error {
	return core.BroadcastPull(pe, target, source, nelems, root, as, ps)
}

// BroadcastPush is the sequential push-based broadcast (Figure 9).
func BroadcastPush[T Elem](pe *PE, target, source Ref[T], nelems, root int, as ActiveSet, ps PSync) error {
	return core.BroadcastPush(pe, target, source, nelems, root, as, ps)
}

// BroadcastBinomial is the log-depth tree broadcast (the paper's
// future-work algorithm).
func BroadcastBinomial[T Elem](pe *PE, target, source Ref[T], nelems, root int, as ActiveSet, ps PSync) error {
	return core.BroadcastBinomial(pe, target, source, nelems, root, as, ps)
}

// FCollect concatenates same-sized arrays from all active-set PEs into
// target on all of them (shmem_fcollect32/64).
func FCollect[T Elem](pe *PE, target, source Ref[T], nelems int, as ActiveSet, ps PSync) error {
	return core.FCollect(pe, target, source, nelems, as, ps)
}

// Collect concatenates variable-sized arrays (shmem_collect32/64).
func Collect[T Elem](pe *PE, target, source Ref[T], nelems int, as ActiveSet, ps PSync) error {
	return core.Collect(pe, target, source, nelems, as, ps)
}

// FCollectRD is the recursive-doubling allgather (future-work ablation):
// log-depth pairwise exchange instead of the naive gather-then-broadcast.
// Requires a power-of-two active set and a dynamic target.
func FCollectRD[T Elem](pe *PE, target, source Ref[T], nelems int, as ActiveSet, ps PSync) error {
	return core.FCollectRD(pe, target, source, nelems, as, ps)
}

// Reductions (shmem_TYPE_OP_to_all).

// SumToAll is the element-wise sum reduction.
func SumToAll[T Numeric](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	return core.SumToAll(pe, target, source, nelems, as, pWrk, ps)
}

// ProdToAll is the element-wise product reduction.
func ProdToAll[T Numeric](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	return core.ProdToAll(pe, target, source, nelems, as, pWrk, ps)
}

// MinToAll is the element-wise minimum reduction.
func MinToAll[T Numeric](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	return core.MinToAll(pe, target, source, nelems, as, pWrk, ps)
}

// MaxToAll is the element-wise maximum reduction.
func MaxToAll[T Numeric](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	return core.MaxToAll(pe, target, source, nelems, as, pWrk, ps)
}

// AndToAll is the element-wise bitwise-and reduction.
func AndToAll[T Integer](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	return core.AndToAll(pe, target, source, nelems, as, pWrk, ps)
}

// OrToAll is the element-wise bitwise-or reduction.
func OrToAll[T Integer](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	return core.OrToAll(pe, target, source, nelems, as, pWrk, ps)
}

// XorToAll is the element-wise bitwise-xor reduction.
func XorToAll[T Integer](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	return core.XorToAll(pe, target, source, nelems, as, pWrk, ps)
}

// SumToAllNaive forces the paper's root-serial reduction (Figure 12).
func SumToAllNaive[T Numeric](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	return core.SumToAllNaive(pe, target, source, nelems, as, pWrk, ps)
}

// SumToAllRD forces the recursive-doubling reduction (future-work
// ablation).
func SumToAllRD[T Numeric](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	return core.SumToAllRD(pe, target, source, nelems, as, pWrk, ps)
}

// Atomic memory operations.

// Swap atomically replaces target's element 0 on PE tpe (shmem_swap).
func Swap[T AtomicT](pe *PE, target Ref[T], value T, tpe int) (T, error) {
	return core.Swap(pe, target, value, tpe)
}

// CSwap is the conditional swap (shmem_cswap).
func CSwap[T AtomicInt](pe *PE, target Ref[T], cond, value T, tpe int) (T, error) {
	return core.CSwap(pe, target, cond, value, tpe)
}

// FAdd atomically adds and returns the prior value (shmem_fadd).
func FAdd[T AtomicInt](pe *PE, target Ref[T], value T, tpe int) (T, error) {
	return core.FAdd(pe, target, value, tpe)
}

// FInc atomically increments and returns the prior value (shmem_finc).
func FInc[T AtomicInt](pe *PE, target Ref[T], tpe int) (T, error) {
	return core.FInc(pe, target, tpe)
}

// Add atomically adds (shmem_add).
func Add[T AtomicInt](pe *PE, target Ref[T], value T, tpe int) error {
	return core.Add(pe, target, value, tpe)
}

// Inc atomically increments (shmem_inc).
func Inc[T AtomicInt](pe *PE, target Ref[T], tpe int) error { return core.Inc(pe, target, tpe) }

// Address queries.

// AddrAccessible reports whether r can be addressed directly on PE target
// (shmem_addr_accessible).
func AddrAccessible[T Elem](pe *PE, r Ref[T], target int) bool {
	return core.AddrAccessible(pe, r, target)
}

// Ptr returns a direct view of r's instance on PE target, or nil
// (shmem_ptr).
func Ptr[T Elem](pe *PE, r Ref[T], target int) []T { return core.Ptr(pe, r, target) }
