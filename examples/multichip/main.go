// Multichip: TSHMEM spanning two TILE-Gx devices over mPIPE — the
// future-work extension of the paper's Section VI ("expanding the
// shared-memory abstraction in TSHMEM across multiple many-core devices").
//
// The program runs a ring exchange and an all-reduce across both chips, and
// reports the cost gap between on-chip (iMesh) and cross-chip (mPIPE)
// transfers.
//
// Run with:
//
//	go run ./examples/multichip
//	go run ./examples/multichip -pes 64 -chips 2
package main

import (
	"flag"
	"fmt"
	"log"

	"tshmem"
)

func main() {
	var (
		pes   = flag.Int("pes", 8, "total processing elements")
		chips = flag.Int("chips", 2, "TILE-Gx chips connected by mPIPE")
	)
	flag.Parse()

	cfg := tshmem.Config{
		Chip:   tshmem.TileGx8036(),
		NPEs:   *pes,
		NChips: *chips,
	}
	_, err := tshmem.Run(cfg, func(pe *tshmem.PE) error {
		me, n := pe.MyPE(), pe.NumPEs()

		data, err := tshmem.Malloc[int64](pe, 8<<10) // 64 kB
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}

		// Ring put: the PE at each chip boundary pays the mPIPE wire.
		next := (me + 1) % n
		t0 := pe.Now()
		if err := tshmem.Put(pe, data, data, 8<<10, next); err != nil {
			return err
		}
		cost := pe.Now().Sub(t0)
		nextChip, err := pe.ChipOf(next)
		if err != nil {
			return err
		}
		kind := "on-chip  (iMesh)"
		if pe.ChipIndex() != nextChip {
			kind = "cross-chip (mPIPE)"
		}
		fmt.Printf("PE %2d (chip %d, tile %2d): 64 kB put to PE %2d  %-18s %v\n",
			me, pe.ChipIndex(), pe.Tile(), next, kind, cost)

		// A chip-spanning reduction works transparently.
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		one, err := tshmem.Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		sum, err := tshmem.Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		pwrk, err := tshmem.Malloc[int64](pe, tshmem.ReduceMinWrkSize)
		if err != nil {
			return err
		}
		psync, err := tshmem.Malloc[int64](pe, tshmem.ReduceSyncSize)
		if err != nil {
			return err
		}
		tshmem.MustLocal(pe, one)[0] = int64(me)
		if err := tshmem.SumToAll(pe, sum, one, 1, tshmem.AllPEs(n), pwrk, psync); err != nil {
			return err
		}
		if me == 0 {
			fmt.Printf("\nsum over %d PEs on %d chips: %d (want %d)\n",
				n, *chips, tshmem.MustLocal(pe, sum)[0], n*(n-1)/2)
		}
		return pe.Finalize()
	})
	if err != nil {
		log.Fatal(err)
	}
}
