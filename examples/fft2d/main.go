// 2D-FFT case study (paper Section V.A): a parallel two-dimensional fast
// Fourier transform over an NxN complex-float image.
//
// Rows are block-distributed across PEs; each PE transforms its rows, a
// distributed transpose (strided one-sided puts, all-to-all) redistributes
// the data, each PE transforms the columns, and PE 0 performs the final
// transpose serially — the stage whose serialization levels the speedup
// off around 5 on the TILE-Gx (Figure 13).
//
// Run with:
//
//	go run ./examples/fft2d                # 512x512 on 8 tiles of a TILE-Gx
//	go run ./examples/fft2d -n 1024 -pes 32 -chip TILEPro64
package main

import (
	"flag"
	"fmt"
	"log"
	"math/cmplx"
	"strings"

	"tshmem"
	"tshmem/internal/fft"
)

func main() {
	var (
		n    = flag.Int("n", 512, "image edge (power of two, divisible by -pes)")
		pes  = flag.Int("pes", 8, "number of processing elements")
		chip = flag.String("chip", "TILE-Gx8036", "chip model (see tshmem-info)")
	)
	flag.Parse()

	c := tshmem.ChipByName(*chip)
	if c == nil {
		var known []string
		for _, k := range tshmem.Chips() {
			known = append(known, k.Name)
		}
		log.Fatalf("unknown chip %q (known: %s, or synthetic-WxH)",
			*chip, strings.Join(known, ", "))
	}
	blockBytes := int64(*n) * int64(*n) * 8 / int64(*pes)
	cfg := tshmem.Config{Chip: c, NPEs: *pes, HeapPerPE: 2*blockBytes + 1<<20}

	_, err := tshmem.Run(cfg, func(pe *tshmem.PE) error {
		res, err := fft.Distributed2D(pe, *n)
		if err != nil {
			return err
		}
		if pe.MyPE() != 0 {
			return nil
		}
		// Report the result and a correctness cross-check against the
		// serial reference.
		ref := fft.TestImage(*n)
		if err := fft.Serial2D(ref, *n); err != nil {
			return err
		}
		var maxErr float64
		for i := range ref {
			if d := cmplx.Abs(complex128(res.Output[i] - ref[i])); d > maxErr {
				maxErr = d
			}
		}
		fmt.Printf("2D-FFT %dx%d complex floats on %s, %d tiles\n", *n, *n, c.Name, *pes)
		fmt.Printf("  virtual execution time: %v\n", res.Elapsed)
		fmt.Printf("  DC bin magnitude:       %.1f\n", cmplx.Abs(complex128(res.Output[0])))
		fmt.Printf("  max abs error vs serial reference: %.2e\n", maxErr)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
