// Quickstart: the smallest complete TSHMEM program.
//
// Four PEs start, allocate a symmetric array, pass values around a ring
// with one-sided puts, wait on flags, and finish with a global sum
// reduction — the SHMEM idioms the paper's Table I catalogues.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tshmem"
)

func main() {
	cfg := tshmem.Config{
		Chip: tshmem.TileGx8036(),
		NPEs: 4,
	}
	rep, err := tshmem.Run(cfg, body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompleted on %s: %d PEs, virtual makespan %v\n",
		rep.Chip, rep.NPEs, rep.MaxTime)
}

func body(pe *tshmem.PE) error {
	me, n := pe.MyPE(), pe.NumPEs()

	// shmalloc: collective, symmetric — the same offsets on every PE.
	ring, err := tshmem.Malloc[int64](pe, 1)
	if err != nil {
		return err
	}
	flag, err := tshmem.Malloc[int32](pe, 1)
	if err != nil {
		return err
	}

	// One-sided ring: put my rank into my right neighbor's slot, then set
	// its flag; the neighbor waits on the flag (shmem_wait_until).
	right := (me + 1) % n
	if err := tshmem.P(pe, ring, int64(me*me), right); err != nil {
		return err
	}
	pe.Fence() // order the data put before the flag
	if err := tshmem.P(pe, flag, int32(1), right); err != nil {
		return err
	}
	if err := tshmem.WaitUntil(pe, flag, tshmem.CmpEQ, int32(1)); err != nil {
		return err
	}
	got := tshmem.MustLocal(pe, ring)[0]
	left := (me + n - 1) % n
	fmt.Printf("PE %d received %d from PE %d\n", me, got, left)

	// Global sum of the received values via a reduction.
	src, err := tshmem.Malloc[int64](pe, 1)
	if err != nil {
		return err
	}
	dst, err := tshmem.Malloc[int64](pe, 1)
	if err != nil {
		return err
	}
	pwrk, err := tshmem.Malloc[int64](pe, tshmem.ReduceMinWrkSize)
	if err != nil {
		return err
	}
	psync, err := tshmem.Malloc[int64](pe, tshmem.ReduceSyncSize)
	if err != nil {
		return err
	}
	tshmem.MustLocal(pe, src)[0] = got
	if err := tshmem.SumToAll(pe, dst, src, 1, tshmem.AllPEs(n), pwrk, psync); err != nil {
		return err
	}
	if me == 0 {
		fmt.Printf("sum of all ring values: %d\n", tshmem.MustLocal(pe, dst)[0])
	}
	return pe.Finalize()
}
