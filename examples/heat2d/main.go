// Heat diffusion: a fourth domain application beyond the paper's two case
// studies, showing the halo-exchange idiom SHMEM codes use on stencil
// problems.
//
// A 2D plate is row-block-distributed; each Jacobi iteration exchanges halo
// rows with the neighbors via one-sided puts, synchronizes with elemental
// flag puts + shmem_wait_until (no global barrier in the inner loop), and
// every few iterations computes the global residual with a max-reduction.
//
// Run with:
//
//	go run ./examples/heat2d
//	go run ./examples/heat2d -n 256 -pes 16 -iters 500
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"tshmem"
)

func main() {
	var (
		n     = flag.Int("n", 128, "plate edge (rows divisible by -pes)")
		pes   = flag.Int("pes", 8, "number of processing elements")
		iters = flag.Int("iters", 200, "Jacobi iterations")
		chip  = flag.String("chip", "TILE-Gx8036", "chip model")
	)
	flag.Parse()

	c := tshmem.ChipByName(*chip)
	if c == nil {
		var known []string
		for _, k := range tshmem.Chips() {
			known = append(known, k.Name)
		}
		log.Fatalf("unknown chip %q (known: %s, or synthetic-WxH)",
			*chip, strings.Join(known, ", "))
	}
	if *n%*pes != 0 {
		log.Fatalf("%d rows do not divide over %d PEs", *n, *pes)
	}
	cfg := tshmem.Config{Chip: c, NPEs: *pes, HeapPerPE: int64(*n / *pes * *n * 8 * 4 + 1<<20)}

	_, err := tshmem.Run(cfg, func(pe *tshmem.PE) error {
		return heat(pe, *n, *iters)
	})
	if err != nil {
		log.Fatal(err)
	}
}

func heat(pe *tshmem.PE, n, iters int) error {
	me, npes := pe.MyPE(), pe.NumPEs()
	rows := n / npes

	// Each PE holds rows+2 rows (halo above and below), double-buffered.
	grid := [2]tshmem.Ref[float64]{}
	var err error
	for i := range grid {
		if grid[i], err = tshmem.Malloc[float64](pe, (rows+2)*n); err != nil {
			return err
		}
	}
	// Halo-arrival flags: [buffer][from-above/from-below], written by the
	// neighbors with elemental puts, awaited with shmem_wait_until.
	flags, err := tshmem.Malloc[int64](pe, 4)
	if err != nil {
		return err
	}
	pwrk, err := tshmem.Malloc[float64](pe, tshmem.ReduceMinWrkSize)
	if err != nil {
		return err
	}
	psync, err := tshmem.Malloc[int64](pe, tshmem.ReduceSyncSize)
	if err != nil {
		return err
	}
	resid, err := tshmem.Malloc[float64](pe, 1)
	if err != nil {
		return err
	}

	// Initial condition: a hot left edge (fixed at 100), cold elsewhere.
	cur := tshmem.MustLocal(pe, grid[0])
	nxt := tshmem.MustLocal(pe, grid[1])
	for r := 0; r < rows+2; r++ {
		cur[r*n] = 100
		nxt[r*n] = 100
	}
	if err := pe.BarrierAll(); err != nil {
		return err
	}

	up, down := me-1, me+1
	for it := 0; it < iters; it++ {
		b := it % 2
		src, dst := grid[b], grid[1-b]
		g := tshmem.MustLocal(pe, src)

		// Send my edge rows into the neighbors' halos, then raise their
		// arrival flags (fence orders data before flag).
		if up >= 0 {
			// My first interior row becomes up's bottom halo row.
			if err := tshmem.Put(pe, src.Slice((rows+1)*n, (rows+2)*n), src.Slice(n, 2*n), n, up); err != nil {
				return err
			}
			pe.Fence()
			if err := tshmem.P(pe, flags.At(2*b+1), int64(it+1), up); err != nil {
				return err
			}
		}
		if down < npes {
			if err := tshmem.Put(pe, src.Slice(0, n), src.Slice(rows*n, (rows+1)*n), n, down); err != nil {
				return err
			}
			pe.Fence()
			if err := tshmem.P(pe, flags.At(2*b), int64(it+1), down); err != nil {
				return err
			}
		}
		// Await my halos.
		if up >= 0 {
			if err := tshmem.WaitUntil(pe, flags.Slice(2*b, 2*b+1), tshmem.CmpGE, int64(it+1)); err != nil {
				return err
			}
		}
		if down < npes {
			if err := tshmem.WaitUntil(pe, flags.Slice(2*b+1, 2*b+2), tshmem.CmpGE, int64(it+1)); err != nil {
				return err
			}
		}

		// Jacobi update over interior points; fixed boundaries.
		d := tshmem.MustLocal(pe, dst)
		var maxDelta float64
		for r := 1; r <= rows; r++ {
			global := me*rows + (r - 1) // global row of local row r
			for col := 1; col < n-1; col++ {
				if global == 0 || global == n-1 {
					continue // top/bottom plate edges fixed
				}
				idx := r*n + col
				v := 0.25 * (g[idx-n] + g[idx+n] + g[idx-1] + g[idx+1])
				if delta := v - g[idx]; delta > maxDelta {
					maxDelta = delta
				} else if -delta > maxDelta {
					maxDelta = -delta
				}
				d[idx] = v
			}
		}
		pe.ComputeFlops(int64(rows) * int64(n) * 5)

		// Periodic global residual.
		if (it+1)%50 == 0 || it == iters-1 {
			tshmem.MustLocal(pe, resid)[0] = maxDelta
			out, err := tshmem.Malloc[float64](pe, 1)
			if err != nil {
				return err
			}
			if err := tshmem.MaxToAll(pe, out, resid, 1, tshmem.AllPEs(npes), pwrk, psync); err != nil {
				return err
			}
			if me == 0 {
				fmt.Printf("iter %4d: max residual %.6f (virtual t=%v)\n",
					it+1, tshmem.MustLocal(pe, out)[0], pe.Now())
			}
			if err := tshmem.Free(pe, out); err != nil {
				return err
			}
		}
	}
	return pe.Finalize()
}
