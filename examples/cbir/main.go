// Content-based image retrieval case study (paper Section V.B):
// autocorrelogram color-feature extraction over a synthetic image database
// and a nearest-neighbor query.
//
// The database is block-partitioned across PEs; each PE extracts features
// for its images, PE 0 collects them with one-sided gets and ranks the
// database against a query image. The integer-dominated workload scales
// almost linearly (speedup 25-27 at 32 tiles in the paper's Figure 14).
//
// Run with:
//
//	go run ./examples/cbir                      # 2,000 images on 8 tiles
//	go run ./examples/cbir -images 22000 -pes 32
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"tshmem"
	"tshmem/internal/cbir"
)

func main() {
	var (
		images = flag.Int("images", 2000, "database size")
		pes    = flag.Int("pes", 8, "number of processing elements")
		chip   = flag.String("chip", "TILE-Gx8036", "chip model (see tshmem-info)")
		query  = flag.Int("query", -1, "query image id (default: images/3)")
		topK   = flag.Int("k", 8, "results to report")
	)
	flag.Parse()

	c := tshmem.ChipByName(*chip)
	if c == nil {
		var known []string
		for _, k := range tshmem.Chips() {
			known = append(known, k.Name)
		}
		log.Fatalf("unknown chip %q (known: %s, or synthetic-WxH)",
			*chip, strings.Join(known, ", "))
	}
	if *query < 0 {
		*query = *images / 3
	}
	p := cbir.DefaultParams()
	cfg := tshmem.Config{
		Chip:      c,
		NPEs:      *pes,
		HeapPerPE: cbir.BlockBytes(*images, *pes, p) + 1<<20,
	}

	_, err := tshmem.Run(cfg, func(pe *tshmem.PE) error {
		res, err := cbir.Distributed(pe, *images, *query, *topK, p)
		if err != nil {
			return err
		}
		if pe.MyPE() != 0 {
			return nil
		}
		fmt.Printf("CBIR over %d images of %dx%d (%d colors) on %s, %d tiles\n",
			*images, p.Size, p.Size, p.Colors, c.Name, *pes)
		fmt.Printf("  virtual execution time: %v\n", res.Elapsed)
		fmt.Printf("  query image %d; nearest neighbors:\n", *query)
		for rank, m := range res.Top {
			marker := ""
			if m.ID/4 == *query/4 {
				marker = "  <- same synthetic family"
			}
			fmt.Printf("  %2d. image %6d  L1 distance %.4f%s\n", rank+1, m.ID, m.Distance, marker)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
