// Scenario-corpus driver: run any of the distributed kernels in
// internal/kernels — sample-sort (all-to-all exchange), BFS (irregular
// one-sided gets + atomic claims), the deep-halo stencil (ghost-cell
// puts), and map-reduce word count (locked buckets + tree reduction) —
// verify the output against the kernel's serial oracle, and print the
// virtual-time makespan.
//
// Run with:
//
//	go run ./examples/kernels                       # all four, defaults
//	go run ./examples/kernels -kernel bfs -size 800 -pes 16
//	go run ./examples/kernels -kernel stencil -size 96 -width 3 -pes 8
//	go run ./examples/kernels -chip Epiphany-III -engine event
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"tshmem"
	"tshmem/internal/core"
	"tshmem/internal/kernels"
)

func main() {
	var (
		which = flag.String("kernel", "all", "kernel to run: all, "+strings.Join(kernels.Names(), ", "))
		size  = flag.Int("size", 0, "problem size (0: kernel default)")
		pes   = flag.Int("pes", 8, "number of processing elements")
		seed  = flag.Int64("seed", 1, "input generator seed")
		width = flag.Int("width", 2, "stencil halo depth")
		iters = flag.Int("iters", 0, "stencil sub-iterations (0: 4*width)")
		chip  = flag.String("chip", "TILE-Gx8036", "chip model")
		eng   = flag.String("engine", "", "execution engine: goroutine, event")
	)
	flag.Parse()

	c := tshmem.ChipByName(*chip)
	if c == nil {
		var known []string
		for _, k := range tshmem.Chips() {
			known = append(known, k.Name)
		}
		log.Fatalf("unknown chip %q (known: %s, or synthetic-WxH)",
			*chip, strings.Join(known, ", "))
	}
	engine, err := core.ParseEngine(*eng)
	if err != nil {
		log.Fatal(err)
	}

	var menu []kernels.Kernel
	if *which == "all" {
		menu = kernels.Kernels()
	} else {
		k, err := kernels.ByName(*which)
		if err != nil {
			log.Fatal(err)
		}
		menu = []kernels.Kernel{k}
	}

	for _, k := range menu {
		s := kernels.Spec{Size: *size, Seed: *seed, NPEs: *pes, Width: *width, Iters: *iters}
		rep, out, err := kernels.Launch(k, s, core.Config{Chip: c, Engine: engine})
		if err != nil {
			log.Fatalf("%s: %v", k.Name(), err)
		}
		if err := k.Verify(s, out); err != nil {
			log.Fatalf("%s: differential check failed: %v", k.Name(), err)
		}
		fmt.Printf("%-10s %s\n", k.Name(), k.Title())
		fmt.Printf("           %d PEs on %s: %d output elements, oracle-verified, makespan %.1f us\n",
			*pes, c.Name, len(out), rep.MaxTime.Us())
	}
}
