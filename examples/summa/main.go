// SUMMA: Scalable Universal Matrix Multiplication on a 2D PE grid — a
// fifth domain application showing OpenSHMEM active-set collectives doing
// real work. C = A x B with the matrices block-distributed over a g x g
// grid; in step k the owners of block-column k of A and block-row k of B
// broadcast their blocks along their row and column active sets, and every
// PE accumulates a local GEMM.
//
// Row active sets are contiguous (stride 2^0); column active sets use the
// OpenSHMEM logPE_stride mechanism (stride g, so g must be a power of two).
//
// Run with:
//
//	go run ./examples/summa              # 256x256 on a 2x2 grid
//	go run ./examples/summa -n 512 -g 4  # 512x512 on a 4x4 grid (16 PEs)
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/bits"

	"tshmem"
)

func main() {
	var (
		n = flag.Int("n", 256, "matrix edge (divisible by -g)")
		g = flag.Int("g", 2, "PE grid edge (power of two)")
	)
	flag.Parse()
	if *g <= 0 || (*g&(*g-1)) != 0 {
		log.Fatalf("grid edge %d must be a power of two", *g)
	}
	if *n%*g != 0 {
		log.Fatalf("matrix edge %d not divisible by grid edge %d", *n, *g)
	}

	b := *n / *g // block edge
	blockBytes := int64(b) * int64(b) * 8
	cfg := tshmem.Config{
		Chip:      tshmem.TileGx8036(),
		NPEs:      *g * *g,
		HeapPerPE: 6*blockBytes + 1<<20,
	}
	_, err := tshmem.Run(cfg, func(pe *tshmem.PE) error {
		return summa(pe, *n, *g)
	})
	if err != nil {
		log.Fatal(err)
	}
}

// element generates the deterministic test matrices: A[i][j] and B[i][j].
func elemA(i, j int) float64 { return math.Sin(float64(i)) + 0.01*float64(j) }
func elemB(i, j int) float64 { return math.Cos(float64(j)) - 0.02*float64(i) }

func summa(pe *tshmem.PE, n, g int) error {
	me := pe.MyPE()
	row, col := me/g, me%g
	b := n / g

	alloc := func() (tshmem.Ref[float64], error) { return tshmem.Malloc[float64](pe, b*b) }
	a, err := alloc()
	if err != nil {
		return err
	}
	bm, err := alloc()
	if err != nil {
		return err
	}
	c, err := alloc()
	if err != nil {
		return err
	}
	aBuf, err := alloc()
	if err != nil {
		return err
	}
	bBuf, err := alloc()
	if err != nil {
		return err
	}
	psync, err := tshmem.Malloc[int64](pe, tshmem.BcastSyncSize)
	if err != nil {
		return err
	}

	// Fill my blocks of A and B (data starts distributed).
	av, bv := tshmem.MustLocal(pe, a), tshmem.MustLocal(pe, bm)
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			av[i*b+j] = elemA(row*b+i, col*b+j)
			bv[i*b+j] = elemB(row*b+i, col*b+j)
		}
	}
	if err := pe.BarrierAll(); err != nil {
		return err
	}

	// My row: PEs {row*g .. row*g+g-1}, stride 1. My column: PEs
	// {col, col+g, ...}, stride g = 2^log2(g).
	rowSet := tshmem.ActiveSet{Start: row * g, LogStride: 0, Size: g}
	colSet := tshmem.ActiveSet{Start: col, LogStride: bits.Len(uint(g)) - 1, Size: g}

	cv := tshmem.MustLocal(pe, c)
	for k := 0; k < g; k++ {
		// Block-column k of A travels along each row; block-row k of B
		// travels down each column. Broadcast roots are ordinals within the
		// active sets.
		aSrc, bSrc := a, bm
		aDst, bDst := aBuf, bBuf
		if err := tshmem.BroadcastPull(pe, aDst, aSrc, b*b, k, rowSet, psync); err != nil {
			return err
		}
		if err := tshmem.BroadcastPull(pe, bDst, bSrc, b*b, k, colSet, psync); err != nil {
			return err
		}
		awork := tshmem.MustLocal(pe, aDst)
		bwork := tshmem.MustLocal(pe, bDst)
		if col == k {
			awork = av // the root's target is untouched; use its own block
		}
		if row == k {
			bwork = bv
		}
		// Local GEMM accumulate: C += Ak x Bk.
		for i := 0; i < b; i++ {
			for kk := 0; kk < b; kk++ {
				aik := awork[i*b+kk]
				for j := 0; j < b; j++ {
					cv[i*b+j] += aik * bwork[kk*b+j]
				}
			}
		}
		pe.ComputeFlops(2 * int64(b) * int64(b) * int64(b))
	}
	if err := pe.BarrierAll(); err != nil {
		return err
	}

	// Verify my block against the serial definition.
	var maxErr float64
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			gi, gj := row*b+i, col*b+j
			var want float64
			for k := 0; k < n; k++ {
				want += elemA(gi, k) * elemB(k, gj)
			}
			if d := math.Abs(cv[i*b+j] - want); d > maxErr {
				maxErr = d
			}
		}
	}
	if me == 0 {
		fmt.Printf("SUMMA %dx%d on a %dx%d grid (%d PEs): virtual time %v\n",
			n, n, g, g, g*g, pe.Now())
	}
	fmt.Printf("PE %2d (grid %d,%d): max |C - ref| = %.2e\n", me, row, col, maxErr)
	if maxErr > 1e-9*float64(n) {
		return fmt.Errorf("PE %d: result error %g too large", me, maxErr)
	}
	return pe.Finalize()
}
