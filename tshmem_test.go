package tshmem_test

import (
	"errors"
	"testing"

	"tshmem"
)

// These tests exercise the public facade end to end, the way a downstream
// user would: everything through package tshmem, nothing through internal
// packages.

func cfg(npes int) tshmem.Config {
	return tshmem.Config{Chip: tshmem.TileGx8036(), NPEs: npes, HeapPerPE: 1 << 20}
}

func TestPublicAPIRoundTrip(t *testing.T) {
	const n = 4
	rep, err := tshmem.Run(cfg(n), func(pe *tshmem.PE) error {
		me := pe.MyPE()
		x, err := tshmem.Malloc[int64](pe, 8)
		if err != nil {
			return err
		}
		v := tshmem.MustLocal(pe, x)
		for i := range v {
			v[i] = int64(me*10 + i)
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		// Neighbor get through the facade.
		buf := make([]int64, 8)
		next := (me + 1) % n
		if err := tshmem.GetSlice(pe, buf, x, next); err != nil {
			return err
		}
		for i, got := range buf {
			if got != int64(next*10+i) {
				t.Errorf("PE %d: buf[%d] = %d", me, i, got)
			}
		}
		// All reads done before anyone mutates.
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		// Elemental ops, atomics, and a reduction.
		if err := tshmem.P(pe, x, int64(-1), me); err != nil {
			return err
		}
		if _, err := tshmem.FAdd(pe, x, int64(1), 0); err != nil {
			return err
		}
		pwrk, err := tshmem.Malloc[int64](pe, tshmem.ReduceMinWrkSize)
		if err != nil {
			return err
		}
		psync, err := tshmem.Malloc[int64](pe, tshmem.ReduceSyncSize)
		if err != nil {
			return err
		}
		sum, err := tshmem.Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		one, err := tshmem.Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		tshmem.MustLocal(pe, one)[0] = 1
		if err := tshmem.SumToAll(pe, sum, one, 1, tshmem.AllPEs(n), pwrk, psync); err != nil {
			return err
		}
		if got := tshmem.MustLocal(pe, sum)[0]; got != n {
			t.Errorf("PE %d: sum = %d, want %d", me, got, n)
		}
		return pe.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NPEs != n || rep.MaxTime <= 0 {
		t.Errorf("report: %+v", rep)
	}
}

func TestPublicErrors(t *testing.T) {
	_, err := tshmem.Run(cfg(2), func(pe *tshmem.PE) error {
		x, err := tshmem.Malloc[int32](pe, 4)
		if err != nil {
			return err
		}
		if err := tshmem.Put(pe, x, x, 4, 99); !errors.Is(err, tshmem.ErrBadPE) {
			t.Errorf("bad PE: %v", err)
		}
		if err := tshmem.Put(pe, x, x, 99, 0); !errors.Is(err, tshmem.ErrBounds) {
			t.Errorf("bounds: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicStaticsOnTILEPro(t *testing.T) {
	c := cfg(2)
	c.Chip = tshmem.TilePro64()
	_, err := tshmem.Run(c, func(pe *tshmem.PE) error {
		st, err := tshmem.DeclareStatic[int64](pe, "s", 4)
		if err != nil {
			return err
		}
		dyn, err := tshmem.Malloc[int64](pe, 4)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if err := tshmem.Put(pe, st, dyn, 4, 1); !errors.Is(err, tshmem.ErrNotSupported) {
				t.Errorf("TILEPro static put: %v", err)
			}
		}
		return pe.BarrierAll()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicChipCatalogue(t *testing.T) {
	if len(tshmem.Chips()) < 4 {
		t.Error("chip catalogue too small")
	}
	if tshmem.ChipByName("TILE-Gx8036") == nil {
		t.Error("Gx8036 missing")
	}
	if tshmem.TileGx8016().Tiles != 16 || tshmem.TilePro36().Tiles != 36 {
		t.Error("variant chips wrong")
	}
}

func TestPublicConfigOptions(t *testing.T) {
	c := cfg(8)
	c.Barrier = tshmem.TMCSpinBarrier
	c.Bcast = tshmem.PushBcast
	c.Reduce = tshmem.RecursiveDoubling
	_, err := tshmem.Run(c, func(pe *tshmem.PE) error {
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		x, err := tshmem.Malloc[int32](pe, 4)
		if err != nil {
			return err
		}
		y, err := tshmem.Malloc[int32](pe, 4)
		if err != nil {
			return err
		}
		ps, err := tshmem.Malloc[int64](pe, tshmem.BcastSyncSize)
		if err != nil {
			return err
		}
		tshmem.MustLocal(pe, x)[0] = int32(pe.MyPE())
		return tshmem.Broadcast(pe, y, x, 4, 0, tshmem.AllPEs(8), ps)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicPtrAndLocks(t *testing.T) {
	_, err := tshmem.Run(cfg(2), func(pe *tshmem.PE) error {
		x, err := tshmem.Malloc[float32](pe, 2)
		if err != nil {
			return err
		}
		if p := tshmem.Ptr(pe, x, (pe.MyPE()+1)%2); p == nil {
			t.Error("Ptr to dynamic object should work (same-VA common memory)")
		}
		if !tshmem.AddrAccessible(pe, x, 0) {
			t.Error("dynamic object should be addr-accessible")
		}
		lock, err := tshmem.Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		if err := pe.SetLock(lock); err != nil {
			return err
		}
		return pe.ClearLock(lock)
	})
	if err != nil {
		t.Fatal(err)
	}
}
